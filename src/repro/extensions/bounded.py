"""Constrained matrix problems with cell bounds ``l <= x <= u``.

Ohuchi & Kaji (1984) studied the Bachem-Korte problem with upper and
lower bounds; the paper's Section 2 cites it as one of the published
variants its framework covers.  Exact equilibration extends naturally:
with bounds, the single-row stationarity condition becomes

    x_ij(lam) = clip(x0_ij + (lam + mu_j) / (2 gamma_ij), l_ij, u_ij)

so the row response ``g_i(lam) = sum_j x_ij(lam)`` is piecewise linear
and nondecreasing with *two* breakpoints per cell — the slope of cell
``j`` switches on at ``b_lo = 2 gamma (l - x0) - mu`` and off at
``b_hi = 2 gamma (u - x0) - mu``.  The closed-form solve is the same
sort-plus-prefix-sums routine over the merged event list, vectorized
across all rows exactly like the one-breakpoint kernel.

Setting ``l = 0, u = inf`` recovers the classical problem (asserted in
the tests), so this module is a strict generalization of
:mod:`repro.equilibration.exact`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import StoppingRule
from repro.core.result import PhaseCounts, SolveResult

__all__ = ["solve_piecewise_linear_bounded", "BoundedProblem", "solve_bounded"]

_BIG = np.finfo(np.float64).max / 8.0


def solve_piecewise_linear_bounded(
    b_lo: np.ndarray,
    b_hi: np.ndarray,
    slopes: np.ndarray,
    lower_sum: np.ndarray,
    target: np.ndarray,
) -> np.ndarray:
    """Solve ``m`` independent bounded-cell equations exactly.

    Find ``lam_i`` such that::

        g_i(lam) = lower_sum_i
                 + sum_j slope_ij * (min(lam, b_hi_ij) - b_lo_ij)_+ = target_i

    Parameters
    ----------
    b_lo, b_hi:
        ``(m, n)`` per-cell activation/saturation breakpoints
        (``b_lo <= b_hi``; infinite ``b_hi`` = unbounded above).
    slopes:
        ``(m, n)`` nonnegative slopes (0 = inert cell).
    lower_sum:
        ``(m,)`` value of ``g`` at ``lam = -inf`` (the sum of lower
        bounds over active cells).
    target:
        ``(m,)`` required row totals; must lie within
        ``[g(-inf), g(+inf)]`` per row.

    Returns
    -------
    ``(m,)`` multipliers.  Rows where ``target`` equals an attainable
    endpoint return the corresponding extreme segment's multiplier.
    """
    b_lo = np.asarray(b_lo, dtype=np.float64)
    b_hi = np.asarray(b_hi, dtype=np.float64)
    slopes = np.asarray(slopes, dtype=np.float64)
    m, n = b_lo.shape
    target = np.asarray(target, dtype=np.float64)
    lower_sum = np.asarray(lower_sum, dtype=np.float64)
    if np.any(slopes < 0.0):
        raise ValueError("slopes must be nonnegative")
    if np.any(b_hi < b_lo):
        raise ValueError("b_hi must dominate b_lo")

    rhs = target - lower_sum
    if np.any(rhs < -1e-9 * np.maximum(np.abs(target), 1.0)):
        bad = int(np.argmin(rhs))
        raise ValueError(
            f"row {bad} infeasible: target below the lower-bound sum"
        )
    upper_gain = np.where(
        np.isfinite(b_hi), slopes * (b_hi - b_lo), np.where(slopes > 0, np.inf, 0.0)
    ).sum(axis=1)
    if np.any(rhs > upper_gain * (1 + 1e-12) + 1e-9 * np.maximum(np.abs(target), 1.0)):
        bad = int(np.argmax(rhs - upper_gain))
        raise ValueError(
            f"row {bad} infeasible: target above the upper-bound sum"
        )

    # Event list: slope turns on at b_lo (+slope), off at b_hi (-slope).
    # Inert and infinite events are parked at _BIG with zero delta.
    on_b = np.where(slopes > 0, b_lo, _BIG)
    off_b = np.where((slopes > 0) & np.isfinite(b_hi), b_hi, _BIG)
    events = np.concatenate([on_b, off_b], axis=1)
    deltas = np.concatenate(
        [np.where(slopes > 0, slopes, 0.0),
         np.where((slopes > 0) & np.isfinite(b_hi), -slopes, 0.0)],
        axis=1,
    )
    order = np.argsort(events, axis=1, kind="stable")
    ev = np.take_along_axis(events, order, axis=1)
    dl = np.take_along_axis(deltas, order, axis=1)

    # After event k: slope S_k = cumsum(dl), offset T_k = cumsum(dl * ev);
    # on segment [ev_k, ev_{k+1}]: g(lam) - lower_sum = S_k*lam - T_k.
    S = np.cumsum(dl, axis=1)
    T = np.cumsum(dl * ev, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        cand = (rhs[:, None] + T) / S
    lo = ev
    hi = np.concatenate([ev[:, 1:], np.full((m, 1), np.inf)], axis=1)
    valid = (cand >= lo) & (cand <= hi) & (S > 0.0) & np.isfinite(cand)

    lam = np.empty(m)
    any_valid = valid.any(axis=1)
    first = np.argmax(valid, axis=1)
    rows = np.arange(m)
    lam[any_valid] = cand[rows[any_valid], first[any_valid]]

    # Degenerate rows: target at the lower-bound sum (lam below every
    # event) or floating-point ties defeating the strict tests.
    missing = ~any_valid
    if np.any(missing):
        at_bottom = missing & (np.abs(rhs) <= 1e-9 * np.maximum(np.abs(target), 1.0))
        lam[at_bottom] = ev[at_bottom, 0] - 1.0
        missing &= ~at_bottom
    if np.any(missing):
        viol = np.maximum(np.maximum(lo - cand, cand - hi), 0.0)
        viol = np.where(np.isfinite(cand) & (S > 0.0), viol, np.inf)
        best = np.argmin(viol[missing], axis=1)
        lam[missing] = cand[np.flatnonzero(missing), best]
    return lam


@dataclass(frozen=True)
class BoundedProblem:
    """Fixed-totals constrained matrix problem with cell bounds.

    Minimize ``sum gamma (x - x0)^2`` subject to ``sum_j x_ij = s0_i``,
    ``sum_i x_ij = d0_j`` and ``l <= x <= u`` (Ohuchi & Kaji 1984's
    setting; ``l = 0, u = inf`` recovers
    :class:`~repro.core.problems.FixedTotalsProblem`).
    """

    x0: np.ndarray
    gamma: np.ndarray
    s0: np.ndarray
    d0: np.ndarray
    lower: np.ndarray = field(default=None)  # type: ignore[assignment]
    upper: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = "bounded"

    def __post_init__(self) -> None:
        x0 = np.asarray(self.x0, dtype=np.float64)
        m, n = x0.shape
        gamma = np.asarray(self.gamma, dtype=np.float64)
        s0 = np.asarray(self.s0, dtype=np.float64)
        d0 = np.asarray(self.d0, dtype=np.float64)
        lower = (np.zeros((m, n)) if self.lower is None
                 else np.asarray(self.lower, dtype=np.float64))
        upper = (np.full((m, n), np.inf) if self.upper is None
                 else np.asarray(self.upper, dtype=np.float64))
        if gamma.shape != (m, n) or lower.shape != (m, n) or upper.shape != (m, n):
            raise ValueError("gamma, lower, upper must match x0's shape")
        if s0.shape != (m,) or d0.shape != (n,):
            raise ValueError("totals must be (m,) and (n,)")
        if np.any(gamma <= 0.0):
            raise ValueError("gamma must be strictly positive")
        if np.any(lower > upper):
            raise ValueError("lower bounds must not exceed upper bounds")
        if not np.isclose(s0.sum(), d0.sum(), rtol=1e-9, atol=1e-6):
            raise ValueError("totals must balance")
        # Necessary feasibility: bounds can carry the totals.  (Summing
        # +inf entries is well-defined and warning-free; a huge finite
        # sentinel would overflow instead.)
        if np.any(lower.sum(axis=1) > s0 + 1e-9) or np.any(
            upper.sum(axis=1) < s0 - 1e-9
        ):
            raise ValueError("row totals incompatible with the cell bounds")
        for attr, val in (("x0", x0), ("gamma", gamma), ("s0", s0),
                          ("d0", d0), ("lower", lower), ("upper", upper)):
            object.__setattr__(self, attr, val)

    @property
    def shape(self) -> tuple[int, int]:
        return self.x0.shape

    def objective(self, x: np.ndarray) -> float:
        return float(np.sum(self.gamma * (x - self.x0) ** 2))


def _bounded_sweep(problem, mu, transpose: bool):
    """One bounded exact-equilibration phase over rows (or columns)."""
    gamma = problem.gamma.T if transpose else problem.gamma
    x0 = problem.x0.T if transpose else problem.x0
    lower = problem.lower.T if transpose else problem.lower
    upper = problem.upper.T if transpose else problem.upper
    target = problem.d0 if transpose else problem.s0

    b_lo = 2.0 * gamma * (lower - x0) - mu[None, :]
    b_hi = np.where(
        np.isfinite(upper), 2.0 * gamma * (upper - x0) - mu[None, :], np.inf
    )
    slopes = 1.0 / (2.0 * gamma)
    lam = solve_piecewise_linear_bounded(
        b_lo, b_hi, slopes, lower.sum(axis=1), target
    )
    x = np.clip(x0 + (lam[:, None] + mu[None, :]) * slopes, lower, upper)
    return lam, (x.T if transpose else x)


def solve_bounded(
    problem: BoundedProblem,
    stop: StoppingRule | None = None,
    record_history: bool = False,
) -> SolveResult:
    """SEA with cell bounds: the same row/column dual splitting, with
    the two-breakpoint kernel replacing the one-breakpoint one."""
    stop = stop or StoppingRule(eps=1e-2, criterion="delta-x")
    t0 = time.perf_counter()
    m, n = problem.shape
    mu = np.zeros(n)
    lam = np.zeros(m)
    x_prev = np.clip(problem.x0, problem.lower, problem.upper)
    counts = PhaseCounts(cells=m * n)
    history: list[float] = []
    converged = False
    residual = np.inf
    x = x_prev

    for t in range(1, stop.max_iterations + 1):
        lam, _ = _bounded_sweep(problem, mu, transpose=False)
        counts.add_equilibration(m, 2 * n)  # two events per cell
        mu, x = _bounded_sweep(problem, lam, transpose=True)
        counts.add_equilibration(n, 2 * m)

        if stop.due(t):
            residual = stop.residual(x, x_prev, problem.s0, problem.d0)
            counts.add_convergence_check(m, n)
            if record_history:
                history.append(residual)
            if residual <= stop.eps:
                converged = True
                break
        x_prev = x

    return SolveResult(
        x=x,
        s=problem.s0.copy(),
        d=problem.d0.copy(),
        lam=lam,
        mu=mu,
        converged=converged,
        iterations=t,
        residual=residual,
        objective=problem.objective(x),
        elapsed=time.perf_counter() - t0,
        algorithm="SEA-bounded",
        history=history,
        counts=counts,
    )
