"""Entropy (Kullback-Leibler) constrained matrix problems.

The paper positions its quadratic framework against RAS, practice's
incumbent, which implicitly minimizes the KL divergence

    sum_ij  x_ij ln(x_ij / x0_ij) - x_ij + x0_ij

over the transportation polytope (Bacharach 1970).  This module shows
the *splitting* idea is not tied to the quadratic objective: the same
row/column dual alternation applies, and for the entropy objective the
row step is closed-form even without sorting —

    x_ij = x0_ij * exp(lam_i + mu_j)        (dual stationarity)
    fixed totals:    e^{lam_i} = s0_i / sum_j x0_ij e^{mu_j}
    elastic totals   (penalty  alpha_i * [s ln(s/s0) - s + s0]):
                     lam_i = (ln s0_i - ln A_i) / (1 + 1/alpha_i),
                     A_i = sum_j x0_ij e^{mu_j},   s_i = s0_i e^{-lam_i/alpha_i}

so fixed-totals entropy SEA *is* RAS, with ``r_i = e^{lam_i}`` and
``c_j = e^{mu_j}`` — the equivalence is asserted in the tests.  The
elastic variant is the entropy analog of the paper's unknown-totals
model, unavailable to plain RAS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.convergence import StoppingRule
from repro.core.result import PhaseCounts, SolveResult

__all__ = ["EntropyProblem", "solve_entropy"]


@dataclass(frozen=True)
class EntropyProblem:
    """KL-objective constrained matrix problem.

    ``alpha``/``beta`` of ``None`` pins the corresponding totals
    (fixed-totals model, i.e. RAS's setting); finite positive weights
    make them elastic with KL penalties.
    """

    x0: np.ndarray
    s0: np.ndarray
    d0: np.ndarray
    alpha: np.ndarray = field(default=None)  # type: ignore[assignment]
    beta: np.ndarray = field(default=None)  # type: ignore[assignment]
    name: str = "entropy"

    def __post_init__(self) -> None:
        x0 = np.asarray(self.x0, dtype=np.float64)
        m, n = x0.shape
        s0 = np.asarray(self.s0, dtype=np.float64)
        d0 = np.asarray(self.d0, dtype=np.float64)
        if np.any(x0 < 0.0):
            raise ValueError("x0 must be nonnegative (KL domain)")
        if s0.shape != (m,) or d0.shape != (n,):
            raise ValueError("totals must be (m,) and (n,)")
        if np.any(s0 <= 0.0) or np.any(d0 <= 0.0):
            raise ValueError("totals must be strictly positive")
        alpha = beta = None
        if self.alpha is not None:
            alpha = np.asarray(self.alpha, dtype=np.float64)
            if alpha.shape != (m,) or np.any(alpha <= 0.0):
                raise ValueError("alpha must be (m,) and strictly positive")
        if self.beta is not None:
            beta = np.asarray(self.beta, dtype=np.float64)
            if beta.shape != (n,) or np.any(beta <= 0.0):
                raise ValueError("beta must be (n,) and strictly positive")
        if (alpha is None) != (beta is None):
            raise ValueError("alpha and beta must be both given or both None")
        if alpha is None and not np.isclose(s0.sum(), d0.sum(), rtol=1e-9):
            raise ValueError("fixed-totals entropy problems need balanced totals")
        for attr, val in (("x0", x0), ("s0", s0), ("d0", d0),
                          ("alpha", alpha), ("beta", beta)):
            object.__setattr__(self, attr, val)

    @property
    def elastic(self) -> bool:
        return self.alpha is not None

    @property
    def shape(self) -> tuple[int, int]:
        return self.x0.shape

    def objective(
        self, x: np.ndarray,
        s: np.ndarray | None = None, d: np.ndarray | None = None,
    ) -> float:
        """KL divergence of the estimate (plus total penalties if elastic).

        Cells with ``x0 == 0`` force ``x == 0`` (0 ln 0 = 0)."""
        active = self.x0 > 0.0
        xs = np.where(active, x, 0.0)
        ratio = np.where(active & (xs > 0), xs / np.where(active, self.x0, 1.0), 1.0)
        kl = np.where(active, xs * np.log(ratio) - xs + self.x0, 0.0).sum()
        total = float(kl)
        if self.elastic:
            total += float(np.sum(
                self.alpha * (s * np.log(s / self.s0) - s + self.s0)
            ))
            total += float(np.sum(
                self.beta * (d * np.log(d / self.d0) - d + self.d0)
            ))
        return total


def solve_entropy(
    problem: EntropyProblem,
    stop: StoppingRule | None = None,
    record_history: bool = False,
) -> SolveResult:
    """Splitting equilibration for the entropy objective.

    Alternates closed-form row and column dual steps.  For fixed totals
    this reproduces RAS exactly (multiplier exponentials are the RAS
    scaling factors); for elastic totals it estimates the totals jointly
    — the capability RAS lacks and the paper's framework motivates.
    """
    stop = stop or StoppingRule(eps=1e-6, criterion="imbalance")
    t0 = time.perf_counter()
    m, n = problem.shape
    x0 = problem.x0
    lam = np.zeros(m)
    mu = np.zeros(n)
    counts = PhaseCounts(cells=m * n)
    history: list[float] = []
    converged = False
    residual = np.inf
    s = problem.s0.copy()
    d = problem.d0.copy()
    x = x0.copy()

    for t in range(1, stop.max_iterations + 1):
        # Row step: A_i = sum_j x0 e^{mu_j}; lam_i in closed form.
        A = x0 @ np.exp(mu)
        A = np.maximum(A, 1e-300)
        if problem.elastic:
            lam = (np.log(problem.s0) - np.log(A)) / (1.0 + 1.0 / problem.alpha)
            s = problem.s0 * np.exp(-lam / problem.alpha)
        else:
            lam = np.log(problem.s0) - np.log(A)
            s = problem.s0
        counts.add_equilibration(m, n)

        # Column step.
        B = np.exp(lam) @ x0
        B = np.maximum(B, 1e-300)
        if problem.elastic:
            mu = (np.log(problem.d0) - np.log(B)) / (1.0 + 1.0 / problem.beta)
            d = problem.d0 * np.exp(-mu / problem.beta)
        else:
            mu = np.log(problem.d0) - np.log(B)
            d = problem.d0
        counts.add_equilibration(n, m)

        if stop.due(t):
            x = x0 * np.exp(lam[:, None] + mu[None, :])
            row_err = np.abs(x.sum(axis=1) - s) / np.maximum(s, 1e-300)
            residual = float(np.max(row_err))
            counts.add_convergence_check(m, n)
            if record_history:
                history.append(residual)
            if residual <= stop.eps:
                converged = True
                break

    x = x0 * np.exp(lam[:, None] + mu[None, :])
    return SolveResult(
        x=x,
        s=s,
        d=d,
        lam=lam,
        mu=mu,
        converged=converged,
        iterations=t,
        residual=residual,
        objective=problem.objective(x, s, d),
        elapsed=time.perf_counter() - t0,
        algorithm="SEA-entropy",
        history=history,
        counts=counts,
    )
