"""Interval constraints on the row and column totals.

Harrigan & Buchanan (1984) estimate I/O tables with the totals known
only up to intervals — ``s_lo <= sum_j x_ij <= s_hi`` — rather than
exactly (the paper's Section 2 cites this as the model its diagonal
case specializes).  The splitting scheme handles it through
complementarity: for each row,

* solve the *unconstrained* row (multiplier ``lam = 0``) and keep it if
  its total already lies inside the interval;
* otherwise pin the total to the violated endpoint and solve the
  fixed-total subproblem for it with the standard one-breakpoint
  kernel (``lam > 0`` at the lower endpoint, ``lam < 0`` at the upper).

Both branches are vectorized across all rows at once.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.convergence import StoppingRule
from repro.core.result import PhaseCounts, SolveResult
from repro.equilibration.exact import solve_piecewise_linear

__all__ = ["IntervalTotalsProblem", "solve_intervals"]


@dataclass(frozen=True)
class IntervalTotalsProblem:
    """Quadratic constrained matrix problem with interval totals.

    Minimize ``sum gamma (x - x0)^2`` subject to
    ``s_lo_i <= sum_j x_ij <= s_hi_i``, ``d_lo_j <= sum_i x_ij <= d_hi_j``
    and ``x >= 0``.  Degenerate intervals (``lo == hi``) recover the
    fixed-totals model.
    """

    x0: np.ndarray
    gamma: np.ndarray
    s_lo: np.ndarray
    s_hi: np.ndarray
    d_lo: np.ndarray
    d_hi: np.ndarray
    name: str = "interval"

    def __post_init__(self) -> None:
        x0 = np.asarray(self.x0, dtype=np.float64)
        m, n = x0.shape
        gamma = np.asarray(self.gamma, dtype=np.float64)
        s_lo = np.asarray(self.s_lo, dtype=np.float64)
        s_hi = np.asarray(self.s_hi, dtype=np.float64)
        d_lo = np.asarray(self.d_lo, dtype=np.float64)
        d_hi = np.asarray(self.d_hi, dtype=np.float64)
        if gamma.shape != (m, n):
            raise ValueError("gamma must match x0")
        if s_lo.shape != (m,) or s_hi.shape != (m,):
            raise ValueError("row intervals must be (m,)")
        if d_lo.shape != (n,) or d_hi.shape != (n,):
            raise ValueError("column intervals must be (n,)")
        if np.any(gamma <= 0.0):
            raise ValueError("gamma must be strictly positive")
        if np.any(s_lo > s_hi) or np.any(d_lo > d_hi):
            raise ValueError("interval lower ends must not exceed upper ends")
        if np.any(s_lo < 0.0) or np.any(d_lo < 0.0):
            raise ValueError("totals of nonnegative flows cannot be negative")
        # Necessary joint feasibility: the interval boxes must overlap.
        if s_lo.sum() > d_hi.sum() + 1e-9 or d_lo.sum() > s_hi.sum() + 1e-9:
            raise ValueError("row and column interval sums are incompatible")
        for attr, val in (("x0", x0), ("gamma", gamma), ("s_lo", s_lo),
                          ("s_hi", s_hi), ("d_lo", d_lo), ("d_hi", d_hi)):
            object.__setattr__(self, attr, val)

    @property
    def shape(self) -> tuple[int, int]:
        return self.x0.shape

    def objective(self, x: np.ndarray) -> float:
        return float(np.sum(self.gamma * (x - self.x0) ** 2))

    def total_violation(self, x: np.ndarray) -> float:
        """Worst interval violation of a candidate (0 when feasible)."""
        rows = x.sum(axis=1)
        cols = x.sum(axis=0)
        return max(
            float(np.max(np.maximum(self.s_lo - rows, 0.0), initial=0.0)),
            float(np.max(np.maximum(rows - self.s_hi, 0.0), initial=0.0)),
            float(np.max(np.maximum(self.d_lo - cols, 0.0), initial=0.0)),
            float(np.max(np.maximum(cols - self.d_hi, 0.0), initial=0.0)),
        )


def _interval_sweep(x0, gamma, mu, lo, hi):
    """One interval-total equilibration over all rows.

    Returns ``(lam, x)`` where per row: ``lam = 0`` if the unconstrained
    total falls inside ``[lo, hi]``; otherwise the exact fixed-total
    multiplier for the violated endpoint.
    """
    slopes = 1.0 / (2.0 * gamma)
    b = -(2.0 * gamma * x0 + mu[None, :])

    free_total = (slopes * np.maximum(-b, 0.0)).sum(axis=1)  # g(0)
    target = np.where(free_total < lo, lo, np.where(free_total > hi, hi, free_total))
    # Solving for the clipped target returns lam == 0 on interior rows
    # automatically, so one vectorized kernel call covers all branches.
    lam = solve_piecewise_linear(b, slopes, target)
    interior = (free_total >= lo) & (free_total <= hi)
    lam = np.where(interior, 0.0, lam)
    x = slopes * np.maximum(lam[:, None] - b, 0.0)
    return lam, x


def solve_intervals(
    problem: IntervalTotalsProblem,
    stop: StoppingRule | None = None,
    record_history: bool = False,
) -> SolveResult:
    """Splitting equilibration with interval totals (Harrigan-Buchanan).

    Alternates the row and column interval sweeps; each sweep solves its
    whole constraint family exactly in closed form, as in classical SEA.
    """
    stop = stop or StoppingRule(eps=1e-2, criterion="delta-x")
    t0 = time.perf_counter()
    m, n = problem.shape
    mu = np.zeros(n)
    lam = np.zeros(m)
    x_prev = np.maximum(problem.x0, 0.0)
    counts = PhaseCounts(cells=m * n)
    history: list[float] = []
    converged = False
    residual = np.inf
    x = x_prev

    for t in range(1, stop.max_iterations + 1):
        lam, _ = _interval_sweep(
            problem.x0, problem.gamma, mu, problem.s_lo, problem.s_hi
        )
        counts.add_equilibration(m, n)
        mu, x_t = _interval_sweep(
            problem.x0.T, problem.gamma.T, lam, problem.d_lo, problem.d_hi
        )
        x = x_t.T
        counts.add_equilibration(n, m)

        if stop.due(t):
            residual = stop.residual(x, x_prev, problem.s_hi, problem.d_hi)
            counts.add_convergence_check(m, n)
            if record_history:
                history.append(residual)
            if residual <= stop.eps:
                converged = True
                break
        x_prev = x

    return SolveResult(
        x=x,
        s=x.sum(axis=1),
        d=x.sum(axis=0),
        lam=lam,
        mu=mu,
        converged=converged,
        iterations=t,
        residual=residual,
        objective=problem.objective(x),
        elapsed=time.perf_counter() - t0,
        algorithm="SEA-interval",
        history=history,
        counts=counts,
    )
