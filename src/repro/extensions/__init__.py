"""Extensions the paper's related-work section scopes out.

Section 2 closes by situating the quadratic constrained matrix problem
among its published variants; this subpackage implements them on top of
the same kernel/dual machinery:

* :mod:`repro.extensions.bounded` — cell bounds ``l <= x <= u``
  (Ohuchi & Kaji 1984 studied the Bachem-Korte problem with upper and
  lower bounds); exact equilibration generalizes to two breakpoints per
  cell.
* :mod:`repro.extensions.intervals` — interval constraints on the row
  and column totals instead of equalities (Harrigan & Buchanan 1984's
  I/O estimation model); the dual multiplier is simply clipped through
  complementarity.
* :mod:`repro.extensions.entropy` — the Kullback-Leibler (entropy)
  objective whose fixed-totals special case *is* RAS (Bacharach 1970),
  solved by the same row/column dual splitting with a Newton inner
  solve, demonstrating that the splitting scheme is not tied to
  quadratics.
* :mod:`repro.extensions.ohuchi_kaji` — Lagrangean dual coordinatewise
  maximization (Ohuchi & Kaji 1984): SEA's closest dual relative, with
  sequential Gauss-Seidel single-multiplier updates instead of SEA's
  parallel block updates.
* :mod:`repro.extensions.three_dim` — three-dimensional constrained
  cubes (origin x destination x commodity) with totals along all three
  axes: the triproportional generalization, solved by cycling exact
  equilibration over the three multiplier families.
"""

from repro.extensions.bounded import (
    BoundedProblem,
    solve_bounded,
    solve_piecewise_linear_bounded,
)
from repro.extensions.entropy import EntropyProblem, solve_entropy
from repro.extensions.intervals import IntervalTotalsProblem, solve_intervals
from repro.extensions.ohuchi_kaji import solve_ohuchi_kaji
from repro.extensions.three_dim import (
    ThreeWayProblem,
    solve_three_way,
    tri_proportional_fit,
)

__all__ = [
    "BoundedProblem",
    "solve_bounded",
    "solve_piecewise_linear_bounded",
    "IntervalTotalsProblem",
    "solve_intervals",
    "EntropyProblem",
    "solve_entropy",
    "solve_ohuchi_kaji",
    "ThreeWayProblem",
    "solve_three_way",
    "tri_proportional_fit",
]
