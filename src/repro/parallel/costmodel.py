"""Deterministic multiprocessor cost model (Tables 6/9, Figures 5/7).

The paper measures speedups on a 6-CPU IBM 3090-600E in standalone mode
— hardware we substitute (see DESIGN.md) with an explicit machine model
over the *same phase structure* the paper describes:

* an embarrassingly parallel phase per row/column equilibration sweep,
  costing ``rows * (9 n + n ln n)`` operations (Section 3.1.3's
  operation count, accumulated in ``PhaseCounts.parallel_ops``), plus —
  for general problems — the dense weight-matrix products of the
  projection steps (``PhaseCounts.matvec_ops``);
* a serial convergence-verification phase of ``O(m n)`` per check
  (``PhaseCounts.serial_ops``), the paper's stated source of efficiency
  loss;
* a fork/join dispatch overhead per parallel phase per extra processor
  (Parallel FORTRAN task spawning);
* a memory-contention drag on the parallel phase that grows with the
  processor count and the working-set size (the 3090 is a shared-memory
  machine; the paper's larger instances show visibly worse efficiency
  at equal phase structure, e.g. SP750 vs SP500);
* optionally, a fraction of each projection step that stays serial
  (assembly and projection-convergence verification interleaved with
  the matvec — the "serial phase not encountered in ... SEA" that the
  paper blames for RC's lower speedups in Table 9).

Predicted time on ``N`` processors (abstract operations):

    par  = parallel_ops - sigma * matvec_ops
    T_N  = par/N * (1 + eta*(N-1)*sqrt(cells)/1000)
           + sigma * matvec_ops
           + kappa * serial_ops
           + tau * parallel_phases * (N-1)

``S_N = T_1/T_N`` and ``E_N = S_N/N`` regenerate the tables.

Calibration
-----------
The class-method presets carry coefficients fitted against the paper's
own published measurements — twelve Table 6 points for the diagonal
presets (worst-case error ~7%, every paper ordering preserved) and four
Table 9 points for the general presets.  The *shape* conclusions —
efficiency falls with N, fixed problems parallelize better than elastic
ones, SEA beats RC because RC pays serial projection verification per
row/column stage — are properties of the phase structure, not of the
fitted constants; ``tests/test_costmodel.py`` asserts both the bands
and the orderings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.result import PhaseCounts

__all__ = ["CostModel", "SpeedupPoint"]


@dataclass(frozen=True)
class SpeedupPoint:
    """One (N, S_N, E_N) entry of a speedup table."""

    processors: int
    time: float
    speedup: float
    efficiency: float


@dataclass(frozen=True)
class CostModel:
    """Machine model mapping phase counts to multiprocessor times.

    Parameters
    ----------
    kappa_serial:
        Cost multiplier of the serial convergence check relative to its
        raw ``m*n`` operation count.
    tau_dispatch:
        Fork/join dispatch cost, in operations, per parallel phase per
        *extra* processor.
    eta_contention:
        Shared-memory contention drag per extra processor, scaled by
        ``sqrt(cells)/1000`` (working-set pressure).
    matvec_serial_fraction:
        Fraction of each projection-step matvec that executes serially
        (projection assembly + per-stage convergence verification).
        Zero for diagonal problems.
    """

    kappa_serial: float = 1.0
    tau_dispatch: float = 0.0
    eta_contention: float = 0.0
    matvec_serial_fraction: float = 0.0

    # ----- presets (see module docstring for calibration) -----

    @classmethod
    def for_fixed(cls) -> "CostModel":
        """Diagonal fixed-totals problems (Table 6: IO72b, 1000x1000)."""
        return cls(kappa_serial=0.5, eta_contention=0.035)

    @classmethod
    def for_elastic(cls) -> "CostModel":
        """Diagonal elastic problems (Table 6: SP500, SP750)."""
        return cls(kappa_serial=2.25, eta_contention=0.0775)

    @classmethod
    def for_general_sea(cls) -> "CostModel":
        """General SEA (Table 9, 10000^2 G example)."""
        return cls(matvec_serial_fraction=0.0224, tau_dispatch=5.94e5)

    @classmethod
    def for_general_rc(cls) -> "CostModel":
        """General RC (Table 9): heavier per-stage serial interludes
        (projection convergence verified per row/column stage)."""
        return cls(matvec_serial_fraction=0.0238, tau_dispatch=2.98e6)

    # ----- evaluation -----

    def time(self, counts: PhaseCounts, processors: int) -> float:
        """Predicted execution time (abstract operations) on ``processors``."""
        if processors < 1:
            raise ValueError("processors must be >= 1")
        n = processors
        serial_matvec = self.matvec_serial_fraction * counts.matvec_ops
        par = counts.parallel_ops - serial_matvec
        scale = math.sqrt(max(counts.cells, 1)) / 1000.0
        parallel = par / n * (1.0 + self.eta_contention * (n - 1) * scale)
        serial = serial_matvec + self.kappa_serial * counts.serial_ops
        dispatch = self.tau_dispatch * counts.parallel_phases * (n - 1)
        return parallel + serial + dispatch

    def speedup(self, counts: PhaseCounts, processors: int) -> SpeedupPoint:
        """Speedup ``S_N = T_1/T_N`` and efficiency ``E_N = S_N/N``."""
        t1 = self.time(counts, 1)
        tn = self.time(counts, processors)
        s = t1 / tn
        return SpeedupPoint(
            processors=processors, time=tn, speedup=s, efficiency=s / processors
        )

    def sweep(
        self, counts: PhaseCounts, processor_counts: tuple[int, ...] = (2, 4, 6)
    ) -> list[SpeedupPoint]:
        """Speedup series over a set of processor counts (one Table 6/9
        row group, one Figure 5/7 curve)."""
        return [self.speedup(counts, n) for n in processor_counts]
