"""Shared-memory process backend.

The plain ``process`` backend of :class:`repro.parallel.executor.
ParallelKernel` pickles each block's arrays on every dispatch — cheap
for long rows, wasteful for many short sweeps.  ``SharedMemoryKernel``
instead maps the breakpoint/slope/target buffers into
``multiprocessing.shared_memory`` blocks once per call, so workers
attach and slice without copying the payload (only the small metadata
travels).  This is the Python analog of the paper's shared-memory
3090 architecture, where every processor addressed the same arrays.

Usable exactly like ``ParallelKernel``::

    with SharedMemoryKernel(workers=4) as kernel:
        result = solve_fixed(problem, kernel=kernel)
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.equilibration.exact import solve_piecewise_linear
from repro.parallel.partition import partition_blocks

__all__ = ["SharedMemoryKernel"]


def _attach(name: str, shape: tuple[int, ...]):
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.float64, buffer=shm.buf)


def _solve_shared_block(args):
    (b_name, sl_name, t_name, a_name, c_name, shape, m, lo, hi) = args
    handles = []
    try:
        shm_b, B = _attach(b_name, shape)
        handles.append(shm_b)
        shm_s, SL = _attach(sl_name, shape)
        handles.append(shm_s)
        shm_t, target = _attach(t_name, (m,))
        handles.append(shm_t)
        a = c = None
        if a_name is not None:
            shm_a, a = _attach(a_name, (m,))
            handles.append(shm_a)
        if c_name is not None:
            shm_c, c = _attach(c_name, (m,))
            handles.append(shm_c)
        return solve_piecewise_linear(
            B[lo:hi], SL[lo:hi], target[lo:hi],
            a=None if a is None else a[lo:hi],
            c=None if c is None else c[lo:hi],
        )
    finally:
        for shm in handles:
            shm.close()


class SharedMemoryKernel:
    """Zero-copy process-pool kernel over shared-memory buffers."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool = ProcessPoolExecutor(max_workers=workers) if workers > 1 else None
        self.dispatches = 0

    def _share(self, arr: np.ndarray) -> tuple[shared_memory.SharedMemory, str]:
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        np.ndarray(arr.shape, dtype=np.float64, buffer=shm.buf)[...] = arr
        return shm, shm.name

    def __call__(self, breakpoints, slopes, target, a=None, c=None) -> np.ndarray:
        self.dispatches += 1
        m = breakpoints.shape[0]
        blocks = partition_blocks(m, self.workers)
        if self._pool is None or len(blocks) <= 1:
            return solve_piecewise_linear(breakpoints, slopes, target, a=a, c=c)

        shms: list[shared_memory.SharedMemory] = []
        try:
            shm_b, b_name = self._share(breakpoints)
            shms.append(shm_b)
            shm_s, sl_name = self._share(slopes)
            shms.append(shm_s)
            shm_t, t_name = self._share(target)
            shms.append(shm_t)
            a_name = c_name = None
            if a is not None:
                shm_a, a_name = self._share(a)
                shms.append(shm_a)
            if c is not None:
                shm_c, c_name = self._share(c)
                shms.append(shm_c)
            tasks = [
                (b_name, sl_name, t_name, a_name, c_name,
                 breakpoints.shape, m, lo, hi)
                for lo, hi in blocks
            ]
            parts = list(self._pool.map(_solve_shared_block, tasks))
            return np.concatenate(parts)
        finally:
            for shm in shms:
                shm.close()
                shm.unlink()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SharedMemoryKernel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
