"""Shared-memory process backend.

The plain ``process`` backend of :class:`repro.parallel.executor.
ParallelKernel` pickles each block's arrays on every dispatch — cheap
for long rows, wasteful for many short sweeps.  ``SharedMemoryKernel``
instead maps the breakpoint/slope/target buffers into
``multiprocessing.shared_memory`` blocks, so workers attach and slice
without copying the payload (only the small metadata travels).  This is
the Python analog of the paper's shared-memory 3090 architecture, where
every processor addressed the same arrays.

Segment lifecycle
-----------------
Segments are *persistent*: one per argument role (breakpoints, slopes,
target, ``a``, ``c``), created on first use, grown when a call needs
more capacity, and rewritten in place on every dispatch.  A sweep loop
therefore maps its shared memory exactly once instead of five
create/unlink round-trips per kernel call, and a worker that raises
mid-attach can no longer leak a half-registered segment — every segment
is owned and unlinked by :meth:`close` (also invoked by the context
manager and the finalizer) via try/finally, on success and error paths
alike.  Workers cache their attachments by segment name for the same
reason, which also keeps their per-block sweep workspaces warm: the
sort permutation cached for block ``i`` survives from one sweep to the
next exactly as in ``ParallelKernel``'s process backend.

Crash-degradation parity with ``ParallelKernel``
------------------------------------------------
``ParallelKernel`` retries broken pools and degrades down its
``process -> thread -> serial`` ladder; a shared-memory kernel cannot —
its whole point is the process-shared mapping, which neither threads
nor in-process serial execution exercise, and a crashed worker may die
holding an attachment, leaving segment contents suspect.  A broken pool
here therefore raises :class:`~repro.errors.WorkerCrashError` (same
taxonomy tag the service retries/breakers key on) instead of degrading;
callers that need rung-by-rung degradation should fall back to
``ParallelKernel``, which is bit-identical on every backend.

Usable exactly like ``ParallelKernel``::

    with SharedMemoryKernel(workers=4) as kernel:
        result = solve_fixed(problem, kernel=kernel)
"""

from __future__ import annotations

import itertools
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.equilibration.exact import solve_piecewise_linear
from repro.errors import WorkerCrashError
from repro.parallel.partition import partition_blocks

__all__ = ["SharedMemoryKernel"]

_SHM_TOKENS = itertools.count()

# Worker-side attachment cache: segment name -> SharedMemory handle.
# Keeping handles open across calls avoids a map/unmap per dispatch and
# keeps views into reused segments valid.  Bounded: stale names (from a
# parent that grew a segment) are evicted oldest-first.
_ATTACHMENTS: dict[str, shared_memory.SharedMemory] = {}
_ATTACHMENTS_MAX = 16


def _attach_cached(name: str, shape: tuple[int, ...]) -> np.ndarray:
    shm = _ATTACHMENTS.pop(name, None)
    if shm is None:
        if len(_ATTACHMENTS) >= _ATTACHMENTS_MAX:
            _ATTACHMENTS.pop(next(iter(_ATTACHMENTS))).close()
        shm = shared_memory.SharedMemory(name=name)
    _ATTACHMENTS[name] = shm  # reinsert = most recently used
    return np.ndarray(shape, dtype=np.float64, buffer=shm.buf)


def _solve_shared_block(args):
    (token, idx, b_name, sl_name, t_name, a_name, c_name, shape, m,
     lo, hi) = args
    B = _attach_cached(b_name, shape)
    SL = _attach_cached(sl_name, shape)
    target = _attach_cached(t_name, (m,))
    a = None if a_name is None else _attach_cached(a_name, (m,))
    c = None if c_name is None else _attach_cached(c_name, (m,))
    # Reuse ParallelKernel's per-block workspace machinery: same module-
    # global cache, same counter deltas back to the parent.  The slopes
    # view changes identity every call but not content, so the
    # workspace's content-equality bind keeps the permutation — but it
    # must own its copy of the slopes (a view into a segment the parent
    # may grow/unlink later is not safe to retain), which bind() does
    # via ``np.asarray`` only for non-contiguous inputs; slice views are
    # contiguous here, so hand bind() an owned copy explicitly.
    from repro.parallel.executor import _solve_block

    return _solve_block((
        token, idx, B[lo:hi], np.array(SL[lo:hi]), target[lo:hi],
        None if a is None else a[lo:hi],
        None if c is None else c[lo:hi],
    ))


class SharedMemoryKernel:
    """Zero-copy process-pool kernel over persistent shared segments."""

    # Same capability flag as ParallelKernel: tells the service this
    # kernel understands the ``workspace=`` kwarg.
    accepts_workspace = True

    def __init__(self, workers: int, use_workspaces: bool = True) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.use_workspaces = use_workspaces
        self._ws_token = (
            f"shm-{next(_SHM_TOKENS)}" if use_workspaces else None
        )
        self._pool = ProcessPoolExecutor(max_workers=workers) if workers > 1 else None
        # role -> (SharedMemory, capacity_bytes); see "Segment lifecycle".
        self._segments: dict[str, tuple[shared_memory.SharedMemory, int]] = {}
        self.dispatches = 0
        self.segment_creates = 0  # segments allocated (first use or growth)
        self.segment_reuses = 0  # writes into an already-mapped segment
        self.sort_sweeps = 0
        self.sort_rows_reused = 0
        self.sort_rows_resorted = 0
        self.sort_rows_skipped = 0
        self.sort_perm_repairs = 0
        self.sort_full_resorts = 0
        self.backend_solves: dict[str, int] = {}
        # Belt and braces: unlink segments even if close() is never
        # called explicitly (e.g. a kernel dropped without the context
        # manager).
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments
        )

    @property
    def sort_reuse_rate(self) -> float:
        total = self.sort_rows_reused + self.sort_rows_resorted
        return self.sort_rows_reused / total if total else 0.0

    def _share(self, role: str, arr: np.ndarray) -> str:
        """Write ``arr`` into the persistent segment for ``role``.

        Same-shape sweeps hit the cached segment (one memcpy, no mmap);
        a larger array retires the old segment — close + unlink inside
        try/finally so an allocation failure cannot leak it — and
        allocates fresh capacity.
        """
        arr = np.ascontiguousarray(arr, dtype=np.float64)
        entry = self._segments.get(role)
        if entry is not None and entry[1] >= arr.nbytes:
            shm = entry[0]
            self.segment_reuses += 1
        else:
            if entry is not None:
                old = entry[0]
                self._segments.pop(role, None)
                try:
                    old.close()
                finally:
                    old.unlink()
            shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
            self._segments[role] = (shm, arr.nbytes)
            self.segment_creates += 1
        np.ndarray(arr.shape, dtype=np.float64, buffer=shm.buf)[...] = arr
        return shm.name

    def __call__(
        self, breakpoints, slopes, target, a=None, c=None, workspace=None
    ) -> np.ndarray:
        self.dispatches += 1
        m = breakpoints.shape[0]
        blocks = partition_blocks(m, self.workers)
        if self._pool is None or len(blocks) <= 1:
            return solve_piecewise_linear(
                breakpoints, slopes, target, a=a, c=c, workspace=workspace
            )

        b_name = self._share("b", breakpoints)
        sl_name = self._share("sl", slopes)
        t_name = self._share("t", target)
        a_name = None if a is None else self._share("a", a)
        c_name = None if c is None else self._share("c", c)
        tasks = [
            (self._ws_token, idx, b_name, sl_name, t_name, a_name, c_name,
             breakpoints.shape, m, lo, hi)
            for idx, (lo, hi) in enumerate(blocks)
        ]
        try:
            parts = list(self._pool.map(_solve_shared_block, tasks))
        except BrokenExecutor as exc:
            # No degradation ladder here (see module docstring): surface
            # the crash under the taxonomy tag the service understands.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            raise WorkerCrashError(
                f"shared-memory worker pool broke mid-dispatch: {exc}"
            ) from exc
        out = np.empty(m)
        for (lo, hi), (block, stats) in zip(blocks, parts):
            out[lo:hi] = block
            if stats is not None:
                self.sort_rows_reused += stats["reused"]
                self.sort_rows_resorted += stats["resorted"]
                self.sort_rows_skipped += stats["skipped"]
                self.sort_perm_repairs += stats["repairs"]
                self.sort_full_resorts += stats["full_resorts"]
                name = stats["backend"]
                self.backend_solves[name] = self.backend_solves.get(name, 0) + 1
        if self._ws_token is not None:
            self.sort_sweeps += 1
        return out

    def close(self) -> None:
        try:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
        finally:
            _release_segments(self._segments)

    def __enter__(self) -> "SharedMemoryKernel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _release_segments(segments: dict) -> None:
    """Close + unlink every owned segment; never leaves one behind.

    Module-level (not a method) so the ``weakref.finalize`` callback
    holds no reference back to the kernel.
    """
    while segments:
        _, (shm, _) = segments.popitem()
        try:
            shm.close()
        finally:
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
