"""Parallel execution of the equilibration phases.

The row (column) equilibration step consists of ``m`` (``n``)
independent subproblems — the paper allocates each to a distinct
processor of the IBM 3090-600E.  Here:

* :mod:`repro.parallel.partition` splits the subproblem index range
  into per-processor blocks;
* :mod:`repro.parallel.executor` provides drop-in ``kernel`` callables
  for the SEA solvers that run the blocks serially, on a thread pool,
  or on a process pool;
* :mod:`repro.parallel.costmodel` is the deterministic machine model
  (operation counts + Amdahl composition with the serial
  convergence-verification phase) that regenerates the paper's speedup
  and efficiency tables on any host, including single-core ones.
"""

from repro.parallel.costmodel import CostModel, SpeedupPoint
from repro.parallel.executor import ParallelKernel
from repro.parallel.partition import partition_blocks
from repro.parallel.shared import SharedMemoryKernel

__all__ = [
    "ParallelKernel",
    "SharedMemoryKernel",
    "partition_blocks",
    "CostModel",
    "SpeedupPoint",
]
