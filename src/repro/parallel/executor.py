"""Worker-pool kernels for the equilibration phases.

``ParallelKernel`` is a drop-in replacement for
:func:`repro.equilibration.exact.solve_piecewise_linear`: the SEA
solvers accept it through their ``kernel`` argument and never know how
the independent subproblems were scheduled — mirroring the paper's
Parallel FORTRAN task allocation (Figure 2), where each row/column
equilibration is dispatched to a distinct processor and the serial
convergence check runs between the fork/join phases.

Backends
--------
``serial``
    Loop over the blocks in-process.  Deterministic baseline; also the
    honest way to *measure* 1-worker time for speedup ratios.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  NumPy's sort/prefix
    kernels release the GIL for most of their runtime, so blocks
    overlap on a multicore host.
``process``
    ``concurrent.futures.ProcessPoolExecutor``.  True OS-level
    parallelism at the price of per-call argument pickling; appropriate
    when rows are long enough that compute dominates transfer.

Fault tolerance
---------------
A dead pool worker (OOM-killed child, segfaulted thread initializer)
must not take the kernel down for the life of the service.  When a
fork/join phase hits a broken pool (``BrokenExecutor``), the kernel
discards the pool, rebuilds it, and re-dispatches the phase — bounded
retries with exponential backoff.  When rebuilds keep failing it
*degrades* down the backend ladder ``process -> thread -> serial`` so a
dispatch always completes; the serial rung cannot crash.  Every backend
computes bit-identical results (asserted in the tests), so degradation
trades throughput, never correctness.  ``pool_rebuilds``,
``worker_crashes`` and ``degraded_dispatches`` count what happened and
:meth:`ParallelKernel.healthy` probes the live pool.

On single-core hosts wall-clock speedup is ~1 regardless of backend;
the reproduction of the paper's Tables 6/9 uses the deterministic
:mod:`repro.parallel.costmodel` instead, with these backends serving as
the functional demonstration that the decomposition is real.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import (
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np

from repro.equilibration.exact import solve_piecewise_linear
from repro.equilibration.workspace import SweepWorkspace
from repro.errors import DeadlineExceededError, WorkerCrashError
from repro.parallel.partition import partition_blocks

__all__ = ["ParallelKernel"]

# Degradation ladder per configured backend: every rung is bit-identical,
# each one cheaper to keep alive than the last, and the final rung
# (serial, in-process) cannot break.
_LADDERS = {
    "process": ("process", "thread", "serial"),
    "thread": ("thread", "serial"),
    "serial": ("serial",),
}

# Patchable pool constructors (tests substitute broken factories here to
# exercise the recovery paths without real worker carnage).
_POOL_TYPES: dict[str, type[Executor]] = {
    "thread": ThreadPoolExecutor,
    "process": ProcessPoolExecutor,
}


# Per-block sweep workspaces, keyed by (kernel token, block index, block
# shape).  Module-global on purpose: process-pool workers import this
# module once and then keep their block's workspace alive across
# dispatches — the freshly unpickled slopes of each dispatch pass the
# workspace's content-equality bind, so the cached sort permutation
# survives the process boundary.  Thread/serial backends share the same
# cache in-process; a per-entry lock makes concurrent dispatches fall
# back to the cold kernel instead of sharing buffers.
_WS_CACHE: dict[tuple, tuple[threading.Lock, SweepWorkspace]] = {}
_WS_CACHE_MAX = 64  # row + column phase per block: 2 * workers entries per kernel
_WS_TOKENS = itertools.count()


def _block_workspace(key, shape):
    """LRU-cached (lock, workspace) for one kernel block."""
    entry = _WS_CACHE.pop(key, None)
    if entry is None:
        if len(_WS_CACHE) >= _WS_CACHE_MAX:
            _WS_CACHE.pop(next(iter(_WS_CACHE)))
        entry = (threading.Lock(), SweepWorkspace(*shape))
    _WS_CACHE[key] = entry  # reinsert = most recently used
    return entry


def _solve_block(args):
    """Solve one row block; returns ``(lam, stats_dict_or_None)``.

    The counter deltas ride back with the result (pickled, for process
    workers) so the parent kernel can aggregate sort-reuse, skip and
    repair rates it never observes directly; ``None`` stats mean the
    block ran the cold kernel (no workspace, nothing to count).
    """
    token, idx, breakpoints, slopes, target, a, c = args
    if token is not None:
        lock, ws = _block_workspace((token, idx, breakpoints.shape), breakpoints.shape)
        if lock.acquire(blocking=False):
            try:
                before = ws.counters_extended()
                lam = solve_piecewise_linear(
                    breakpoints, slopes, target, a=a, c=c, workspace=ws
                )
                after = ws.counters_extended()
                return lam, {
                    "reused": after["rows_reused"] - before["rows_reused"],
                    "resorted": after["rows_resorted"] - before["rows_resorted"],
                    "skipped": after["rows_skipped"] - before["rows_skipped"],
                    "repairs": after["perm_repairs"] - before["perm_repairs"],
                    "full_resorts": (
                        after["full_resorts"] - before["full_resorts"]
                    ),
                    "backend": ws.backend_name,
                }
            finally:
                lock.release()
    lam = solve_piecewise_linear(breakpoints, slopes, target, a=a, c=c)
    return lam, None


def _probe() -> int:
    """No-op task for :meth:`ParallelKernel.healthy` round-trips."""
    return 42


class ParallelKernel:
    """Row-partitioned piecewise-linear kernel.

    Parameters
    ----------
    workers:
        Number of processors to emulate (``p`` in the paper, ``p <= n``).
    backend:
        ``'serial'``, ``'thread'`` or ``'process'``.
    max_retries:
        Pool rebuild + re-dispatch attempts per ladder rung after a
        worker crash, before degrading to the next rung.
    retry_backoff_s:
        Initial sleep before a rebuilt pool is retried (doubles per
        consecutive crash).

    The kernel is a *long-lived* resource: the underlying pool is
    created lazily on first parallel dispatch and then reused across as
    many solves as you like, so a process-pool backend forks exactly
    once per kernel, not once per solve.  ``close()`` releases the pool
    (cancelling any queued work); the kernel stays usable afterwards
    (the next dispatch transparently builds a fresh pool), which lets
    services keep one kernel for their whole lifetime and still reclaim
    workers during quiet periods.

    Use as a context manager (or call :meth:`close`) to release pool
    resources::

        with ParallelKernel(workers=4, backend='thread') as kernel:
            result = solve_fixed(problem, kernel=kernel)
    """

    # Capability flag: the service only threads SweepWorkspace pairs
    # through kernels that declare they accept the ``workspace=`` kwarg
    # (unknown kernels keep the plain five-argument call).
    accepts_workspace = True

    def __init__(
        self,
        workers: int,
        backend: str = "serial",
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        use_workspaces: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in _LADDERS:
            raise ValueError(f"unknown backend {backend!r}")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.workers = workers
        self.backend = backend
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.use_workspaces = use_workspaces
        # Stable per-kernel token: block workspaces (in this process and
        # in pool workers) key on it, so dispatches from the same kernel
        # find their previous sweep's permutation and different kernels
        # never collide.
        self._ws_token = next(_WS_TOKENS) if use_workspaces else None
        self._ladder = _LADDERS[backend]
        self._rung = 0
        self._pool: Executor | None = None
        self.dispatches = 0  # fork/join phases executed (diagnostics)
        self.pool_rebuilds = 0  # broken pools replaced by fresh ones
        self.worker_crashes = 0  # BrokenExecutor faults observed
        self.degraded_dispatches = 0  # dispatches run below the configured backend
        self.sort_sweeps = 0  # workspace-backed fork/join phases
        self.sort_rows_reused = 0  # block rows served by a cached permutation
        self.sort_rows_resorted = 0  # block rows that re-argsorted
        self.sort_rows_skipped = 0  # block rows whose multiplier was reused
        self.sort_perm_repairs = 0  # block rows fixed by splice repair
        self.sort_full_resorts = 0  # block sweeps that paid a full argsort
        self.backend_solves: dict[str, int] = {}  # backend name -> block solves

    @property
    def sort_reuse_rate(self) -> float:
        """Fraction of block-row sorts answered by cached permutations."""
        total = self.sort_rows_reused + self.sort_rows_resorted
        return self.sort_rows_reused / total if total else 0.0

    # -- pool lifecycle -----------------------------------------------------

    @property
    def effective_backend(self) -> str:
        """The ladder rung dispatches currently run on (== ``backend``
        until crashes force a degradation)."""
        return self._ladder[self._rung]

    def _ensure_pool(self) -> Executor | None:
        """Create the worker pool on demand (and after a ``close()``)."""
        if self._pool is None:
            factory = _POOL_TYPES.get(self.effective_backend)
            if factory is not None:
                self._pool = factory(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop the pool without waiting (it is broken or abandoned)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def healthy(self) -> bool:
        """Round-trip a probe task through the live pool.

        ``True`` for the serial rung (nothing to break) and for a pool
        that answers within 5 seconds; ``False`` for a broken or hung
        pool.  Never raises.
        """
        if self.effective_backend == "serial":
            return True
        try:
            pool = self._ensure_pool()
            return pool.submit(_probe).result(timeout=5.0) == 42
        except Exception:
            return False

    def reset(self) -> None:
        """Forgive past crashes: climb back to the configured backend."""
        if self._rung != 0:
            self._discard_pool()
            self._rung = 0

    # -- dispatch -----------------------------------------------------------

    def __call__(
        self, breakpoints, slopes, target, a=None, c=None, timeout=None,
        workspace=None,
    ) -> np.ndarray:
        """One fork/join phase over the row blocks.

        ``timeout`` (seconds) bounds the whole phase on the pooled
        backends; a phase that overruns raises
        :class:`~repro.errors.DeadlineExceededError` and abandons its
        pool so stragglers cannot occupy fresh dispatches.  The output
        array is assembled only after *every* block solved, so a partial
        failure can never leak a half-written result.

        ``workspace`` (a caller-owned
        :class:`~repro.equilibration.workspace.SweepWorkspace`) is
        honored on single-block dispatches, which run in-process anyway;
        multi-block dispatches use the kernel's own per-block worker
        workspaces instead, whose reuse counters aggregate into
        ``sort_rows_reused`` / ``sort_rows_resorted``.  A caller
        workspace's counters belong to the caller — the kernel never
        double-counts them.
        """
        m = breakpoints.shape[0]
        blocks = partition_blocks(m, self.workers)
        self.dispatches += 1
        if workspace is not None and len(blocks) <= 1:
            return solve_piecewise_linear(
                breakpoints, slopes, target, a=a, c=c, workspace=workspace
            )
        token = self._ws_token
        tasks = [
            (
                token,
                idx,
                breakpoints[lo:hi],
                slopes[lo:hi],
                target[lo:hi],
                None if a is None else a[lo:hi],
                None if c is None else c[lo:hi],
            )
            for idx, (lo, hi) in enumerate(blocks)
        ]
        results = self._run_tasks(tasks, timeout)
        out = np.empty(m)
        for (lo, hi), (block, stats) in zip(blocks, results):
            out[lo:hi] = block
            if stats is not None:
                self.sort_rows_reused += stats["reused"]
                self.sort_rows_resorted += stats["resorted"]
                self.sort_rows_skipped += stats["skipped"]
                self.sort_perm_repairs += stats["repairs"]
                self.sort_full_resorts += stats["full_resorts"]
                name = stats["backend"]
                self.backend_solves[name] = self.backend_solves.get(name, 0) + 1
        if token is not None:
            self.sort_sweeps += 1
        return out

    def _run_tasks(self, tasks, timeout):
        """Run the block tasks with crash recovery and degradation.

        Ordinary task exceptions (e.g. an infeasible subproblem)
        propagate unchanged — they are deterministic and would recur on
        any backend.  Only *pool* failures are retried/degraded.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        attempts = 0
        delay = self.retry_backoff_s
        while True:
            if self.effective_backend == "serial" or len(tasks) <= 1:
                if self.effective_backend != self.backend:
                    self.degraded_dispatches += 1
                return [_solve_block(task) for task in tasks]
            futures = []
            try:
                # submit() itself raises BrokenExecutor on a pool whose
                # workers died since the last dispatch, so it lives
                # inside the recovery block too.
                pool = self._ensure_pool()
                futures = [pool.submit(_solve_block, task) for task in tasks]
                results = []
                for future in futures:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise FuturesTimeoutError()
                    results.append(future.result(timeout=remaining))
                if self.effective_backend != self.backend:
                    self.degraded_dispatches += 1
                return results
            except FuturesTimeoutError:
                # Running pool tasks cannot be interrupted; abandon the
                # pool so the stragglers die with it instead of eating
                # the next dispatch's workers.
                self._discard_pool()
                raise DeadlineExceededError(
                    f"kernel dispatch exceeded its {timeout:.3f}s budget "
                    f"on the {self.effective_backend!r} backend"
                ) from None
            except BrokenExecutor as exc:
                self.worker_crashes += 1
                self._discard_pool()
                attempts += 1
                if attempts > self.max_retries:
                    if self._rung + 1 < len(self._ladder):
                        # Degrade one rung and start its retry budget
                        # afresh; the ladder ends at serial, which
                        # cannot break, so the dispatch always lands.
                        self._rung += 1
                        attempts = 0
                        delay = self.retry_backoff_s
                        continue
                    raise WorkerCrashError(
                        f"worker pool kept breaking after {self.max_retries} "
                        f"rebuilds on every backend down from "
                        f"{self.backend!r}: {exc}"
                    ) from exc
                self.pool_rebuilds += 1
                time.sleep(delay)
                delay *= 2.0

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelKernel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
