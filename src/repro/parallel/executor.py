"""Worker-pool kernels for the equilibration phases.

``ParallelKernel`` is a drop-in replacement for
:func:`repro.equilibration.exact.solve_piecewise_linear`: the SEA
solvers accept it through their ``kernel`` argument and never know how
the independent subproblems were scheduled — mirroring the paper's
Parallel FORTRAN task allocation (Figure 2), where each row/column
equilibration is dispatched to a distinct processor and the serial
convergence check runs between the fork/join phases.

Backends
--------
``serial``
    Loop over the blocks in-process.  Deterministic baseline; also the
    honest way to *measure* 1-worker time for speedup ratios.
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  NumPy's sort/prefix
    kernels release the GIL for most of their runtime, so blocks
    overlap on a multicore host.
``process``
    ``concurrent.futures.ProcessPoolExecutor``.  True OS-level
    parallelism at the price of per-call argument pickling; appropriate
    when rows are long enough that compute dominates transfer.

On single-core hosts wall-clock speedup is ~1 regardless of backend;
the reproduction of the paper's Tables 6/9 uses the deterministic
:mod:`repro.parallel.costmodel` instead, with these backends serving as
the functional demonstration that the decomposition is real (results
are bit-identical across backends — asserted in the tests).
"""

from __future__ import annotations

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.equilibration.exact import solve_piecewise_linear
from repro.parallel.partition import partition_blocks

__all__ = ["ParallelKernel"]


def _solve_block(args):
    breakpoints, slopes, target, a, c = args
    return solve_piecewise_linear(breakpoints, slopes, target, a=a, c=c)


class ParallelKernel:
    """Row-partitioned piecewise-linear kernel.

    Parameters
    ----------
    workers:
        Number of processors to emulate (``p`` in the paper, ``p <= n``).
    backend:
        ``'serial'``, ``'thread'`` or ``'process'``.

    The kernel is a *long-lived* resource: the underlying pool is
    created lazily on first parallel dispatch and then reused across as
    many solves as you like, so a process-pool backend forks exactly
    once per kernel, not once per solve.  ``close()`` releases the pool;
    the kernel stays usable afterwards (the next dispatch transparently
    builds a fresh pool), which lets services keep one kernel for their
    whole lifetime and still reclaim workers during quiet periods.

    Use as a context manager (or call :meth:`close`) to release pool
    resources::

        with ParallelKernel(workers=4, backend='thread') as kernel:
            result = solve_fixed(problem, kernel=kernel)
    """

    def __init__(self, workers: int, backend: str = "serial") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in ("serial", "thread", "process"):
            raise ValueError(f"unknown backend {backend!r}")
        self.workers = workers
        self.backend = backend
        self._pool: Executor | None = None
        self.dispatches = 0  # fork/join phases executed (diagnostics)

    def _ensure_pool(self) -> Executor | None:
        """Create the worker pool on demand (and after a ``close()``)."""
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            elif self.backend == "process":
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def __call__(self, breakpoints, slopes, target, a=None, c=None) -> np.ndarray:
        m = breakpoints.shape[0]
        blocks = partition_blocks(m, self.workers)
        self.dispatches += 1
        if len(blocks) <= 1 or self._ensure_pool() is None:
            out = np.empty(m)
            for lo, hi in blocks:
                out[lo:hi] = _solve_block(
                    (
                        breakpoints[lo:hi],
                        slopes[lo:hi],
                        target[lo:hi],
                        None if a is None else a[lo:hi],
                        None if c is None else c[lo:hi],
                    )
                )
            return out

        tasks = [
            (
                breakpoints[lo:hi],
                slopes[lo:hi],
                target[lo:hi],
                None if a is None else a[lo:hi],
                None if c is None else c[lo:hi],
            )
            for lo, hi in blocks
        ]
        results = list(self._pool.map(_solve_block, tasks))
        return np.concatenate(results)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelKernel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
