"""Static block partitioning of subproblem indices.

Exact equilibration costs the same for every row of a dense matrix, so
the natural schedule is contiguous equal-size blocks (contiguity also
keeps each worker's slice cache-friendly — the rows it sorts are
adjacent in memory).
"""

from __future__ import annotations

__all__ = ["partition_blocks"]


def partition_blocks(count: int, workers: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into at most ``workers`` contiguous blocks.

    Blocks differ in size by at most one; empty blocks are never
    returned (fewer blocks than ``workers`` when ``count < workers``).

    >>> partition_blocks(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if count < 0:
        raise ValueError("count must be nonnegative")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    blocks: list[tuple[int, int]] = []
    base, extra = divmod(count, workers)
    start = 0
    for w in range(min(workers, count)):
        size = base + (1 if w < extra else 0)
        if size == 0:
            break
        blocks.append((start, start + size))
        start += size
    return blocks
