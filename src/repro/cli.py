"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Solve a constrained matrix problem from CSV inputs::

        python -m repro solve --kind fixed --table x0.csv \\
            --row-totals totals_s.csv --col-totals totals_d.csv \\
            --weights chi-square --out solution.csv

    Totals files are one-column CSVs (label, value).  ``--kind sam``
    needs only ``--row-totals`` (prior account totals); ``--kind
    elastic`` treats both totals files as priors.

``serve``
    Run the solve service over newline-delimited JSON::

        python -m repro serve --jsonl < requests.jsonl > responses.jsonl

    Each input line is one request (see :mod:`repro.service.wire` for
    the schema); each output line is the matching response.  Requests
    are micro-batched in windows (``--window``), fused by shape, and
    warm-started from previously-solved problems.

    Durability (all opt-in): ``--journal`` write-ahead logs every
    accepted request and every response; ``--recover`` replays a
    journal's unanswered requests exactly once after a crash;
    ``--snapshot`` persists the warm state across restarts;
    ``--max-queue``/``--admission``/``--max-per-kind`` bound the queue
    under an overload policy; SIGTERM/SIGINT drain gracefully under
    ``--drain-deadline`` and exit 0.

    Operations: ``--supervise`` (with ``--tcp``) runs the self-healing
    control loop of :mod:`repro.supervisor` against the live service,
    journaling every corrective action to ``--action-journal``;
    ``--stats --prometheus`` emits the exit stats in Prometheus text
    exposition instead of JSON.

``shard-serve``
    Host one cluster shard over TCP for a remote router::

        python -m repro shard-serve --tcp 0.0.0.0:7800 \\
            --journal shard-a.journal --fsync 1

    The router side is ``serve --cluster N --shard-backend net
    --shard host:port`` (one ``--shard`` per remote, or
    comma-separated).  Every journal record the shard writes is
    shipped to the router's replica journal and acknowledged before
    the response is delivered, so the router can fail a dead *host*'s
    keyspace over onto survivors with zero lost and zero
    double-answered requests.  ``--recover`` replays the local journal
    on startup, exactly like ``serve --recover``.

``chaos-proxy``
    Run a seeded fault-injecting TCP proxy in front of an edge::

        python -m repro chaos-proxy --listen 127.0.0.1:0 \\
            --upstream 127.0.0.1:7777 --latency 0.002 --reset 0.01

    Faults (latency, bandwidth, corruption, truncation, resets, timed
    partitions) come from a replayable :class:`repro.chaos.ChaosSchedule`
    — pass ``--schedule plan.json`` or compose flags; ``--events``
    writes the injection log as JSONL.

``experiment``
    Regenerate one paper table/figure::

        python -m repro experiment table3 [--full]

``info``
    Print the library version and the experiment registry.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Splitting Equilibration Algorithm for constrained "
                    "matrix problems (Nagurney & Eydeland 1990)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a problem from CSV inputs")
    solve.add_argument("--kind", choices=("fixed", "elastic", "sam"),
                       default="fixed")
    solve.add_argument("--table", required=True,
                       help="labeled CSV of the base matrix X0")
    solve.add_argument("--row-totals", required=True,
                       help="one-column CSV (label,value) of row totals")
    solve.add_argument("--col-totals",
                       help="one-column CSV of column totals "
                            "(not used for --kind sam)")
    solve.add_argument("--weights", choices=("unit", "chi-square",
                                             "inverse-sqrt"),
                       default="unit")
    solve.add_argument("--eps", type=float, default=None,
                       help="stopping tolerance (paper defaults per kind)")
    solve.add_argument("--max-iterations", type=int, default=10_000)
    solve.add_argument("--out", help="write the estimate to a labeled CSV")
    solve.add_argument("--report", action="store_true",
                       help="print the convergence diagnostics report")
    solve.add_argument("--json", action="store_true",
                       help="print the result as a JSON document instead of "
                            "the text summary (exit code 2 signals "
                            "nonconvergence either way)")

    serve = sub.add_parser("serve",
                           help="solve a JSONL request stream via the "
                                "batching, warm-starting service")
    serve.add_argument("--jsonl", action="store_true",
                       help="newline-delimited JSON in/out (the only wire "
                            "format; flag kept explicit for forward "
                            "compatibility)")
    serve.add_argument("--tcp", metavar="HOST:PORT",
                       help="serve the same JSONL schema over an asyncio "
                            "TCP edge instead of stdin/stdout: concurrent "
                            "pipelined client connections, in-order "
                            "responses per connection, socket-level "
                            "backpressure under --admission block, "
                            "SIGTERM/SIGINT graceful drain (port 0 picks "
                            "a free port)")
    serve.add_argument("--input",
                       help="read requests from this file (default: stdin)")
    serve.add_argument("--output",
                       help="write responses to this file (default: stdout)")
    serve.add_argument("--window", type=int, default=32,
                       help="micro-batch window: requests buffered before a "
                            "drain (default 32)")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker count of the shared kernel pool")
    serve.add_argument("--backend", choices=("serial", "thread", "process"),
                       default="serial")
    serve.add_argument("--no-batch", action="store_true",
                       help="disable same-shape request fusion")
    serve.add_argument("--no-warm-start", action="store_true",
                       help="disable the warm-start cache")
    serve.add_argument("--no-matrix", action="store_true",
                       help="omit x/s/d payloads from responses")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request wall-clock budget in "
                            "seconds (overrun requests answer with "
                            "error.kind=deadline-exceeded)")
    serve.add_argument("--retries", type=int, default=1,
                       help="default re-attempts after transient errors "
                            "(worker crashes); deterministic errors are "
                            "never retried (default 1)")
    serve.add_argument("--stats", action="store_true",
                       help="print the ServiceStats JSON to stderr on exit")
    serve.add_argument("--journal",
                       help="write-ahead journal path (JSONL): every "
                            "accepted request is journaled before solving, "
                            "every response before delivery, enabling "
                            "crash-safe exactly-once replay via --recover")
    serve.add_argument("--fsync", type=int, default=0,
                       help="journal fsync interval: 0 never (flush only), "
                            "1 every record, N every N records (default 0)")
    serve.add_argument("--recover", action="store_true",
                       help="on startup, replay unanswered requests from "
                            "--journal (exactly once; answered ids keep "
                            "their recorded responses) before reading new "
                            "input")
    serve.add_argument("--snapshot",
                       help="warm-state sidecar path: warm-start cache "
                            "(duals + sort permutations) and breaker state "
                            "saved on exit, restored on start (a directory "
                            "of per-shard sidecars under --cluster)")
    serve.add_argument("--snapshot-every", type=int, default=None,
                       help="also write the warm-state sidecar every N "
                            "processed requests (requires --snapshot)")
    serve.add_argument("--max-queue", type=int, default=None,
                       help="bound the request queue; excess handled per "
                            "--admission (default: unbounded)")
    serve.add_argument("--admission",
                       choices=("block", "reject-newest", "shed-oldest"),
                       default="reject-newest",
                       help="overload policy at a full --max-queue: "
                            "reject-newest answers error.kind=overloaded, "
                            "shed-oldest evicts the stalest queued request, "
                            "block applies backpressure (default "
                            "reject-newest)")
    serve.add_argument("--max-per-kind", type=int, default=None,
                       help="fair-share bound on any one problem kind's "
                            "queue slots")
    serve.add_argument("--drain-deadline", type=float, default=30.0,
                       help="graceful-shutdown budget in seconds: on "
                            "SIGTERM/SIGINT stop admission, drain queued "
                            "work up to this long, leave the rest "
                            "journaled, exit 0 (default 30)")
    serve.add_argument("--cluster", type=int, default=None, metavar="N",
                       help="serve through a sharded cluster of N replica "
                            "services, consistent-hash routed on the "
                            "problem fingerprint; --journal/--snapshot "
                            "become per-shard directories and admission "
                            "applies at the router edge")
    serve.add_argument("--max-per-shard", type=int, default=None,
                       help="fair-share bound on any one shard's in-flight "
                            "requests (--cluster only; pairs with "
                            "--max-queue like --max-per-kind does)")
    serve.add_argument("--shard-backend",
                       choices=("process", "inline", "net"),
                       default="process",
                       help="cluster replica isolation: child processes "
                            "over pipes (default), in-process shards "
                            "(deterministic, zero IPC), or remote "
                            "shard-serve hosts over TCP (net; requires "
                            "--shard addresses)")
    serve.add_argument("--shard", action="append", default=None,
                       metavar="HOST:PORT",
                       help="remote shard address for --shard-backend net "
                            "(repeatable, or comma-separated); the number "
                            "of addresses must match --cluster (or "
                            "implies it); with --journal, every remote "
                            "journal record is shipped into a per-shard "
                            "replica journal under the --journal "
                            "directory, enabling host-loss failover")
    serve.add_argument("--supervise", action="store_true",
                       help="run the self-healing supervisor next to the "
                            "--tcp edge: it polls service/cluster stats, "
                            "applies one bounded corrective action at a "
                            "time (respawn shards, flip admission, scale "
                            "the window, pause intake), verifies the "
                            "triggering signal improved, and reverts "
                            "actions that did not help")
    serve.add_argument("--supervise-interval", type=float, default=2.0,
                       help="supervisor poll period in seconds (default 2)")
    serve.add_argument("--action-journal",
                       help="append the supervisor's decisions (apply / "
                            "verify / revert) to this JSONL file "
                            "(requires --supervise)")
    serve.add_argument("--prometheus", action="store_true",
                       help="with --stats, print Prometheus text "
                            "exposition (repro_* series) to stderr "
                            "instead of JSON")

    shard = sub.add_parser(
        "shard-serve",
        help="host one cluster shard over TCP for a remote "
             "serve --shard-backend net router",
    )
    shard.add_argument("--tcp", required=True, metavar="HOST:PORT",
                       help="address to listen on (port 0 picks a free "
                            "port; the bound address is announced on "
                            "stderr as 'shard listening on HOST:PORT')")
    shard.add_argument("--shard-id", default="shard",
                       help="shard name reported in the hello handshake "
                            "(default 'shard')")
    shard.add_argument("--journal",
                       help="local write-ahead journal path; with a "
                            "router-side replica this is what makes "
                            "host-loss failover exactly-once")
    shard.add_argument("--fsync", type=int, default=0,
                       help="journal fsync interval (0 never, 1 every "
                            "record, N every N records; default 0)")
    shard.add_argument("--recover", action="store_true",
                       help="replay unanswered requests from --journal "
                            "on startup (exactly once)")
    shard.add_argument("--snapshot",
                       help="warm-state sidecar path (saved on exit, "
                            "restored on start)")
    shard.add_argument("--workers", type=int, default=1,
                       help="worker count of this shard's kernel pool")
    shard.add_argument("--backend", choices=("serial", "thread", "process"),
                       default="serial")
    shard.add_argument("--window", type=int, default=32,
                       help="micro-batch window (default 32)")
    shard.add_argument("--no-batch", action="store_true",
                       help="disable same-shape request fusion")
    shard.add_argument("--no-warm-start", action="store_true",
                       help="disable the warm-start cache")
    shard.add_argument("--deadline", type=float, default=None,
                       help="default per-request wall-clock budget in "
                            "seconds")
    shard.add_argument("--retries", type=int, default=1,
                       help="default re-attempts after transient errors "
                            "(default 1)")

    chaos = sub.add_parser(
        "chaos-proxy",
        help="seeded fault-injecting TCP proxy for chaos-testing an edge",
    )
    chaos.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="address to accept clients on (port 0 picks a "
                            "free port; default 127.0.0.1:0)")
    chaos.add_argument("--upstream", required=True, metavar="HOST:PORT",
                       help="edge server to forward to")
    chaos.add_argument("--schedule",
                       help="ChaosSchedule JSON file; flag overrides below "
                            "apply on top of it")
    chaos.add_argument("--seed", type=int, default=None,
                       help="fault-stream seed (replays are deterministic "
                            "per connection and direction)")
    chaos.add_argument("--latency", type=float, default=None,
                       help="fixed extra delay per forwarded chunk, seconds")
    chaos.add_argument("--jitter", type=float, default=None,
                       help="heavy-tailed (Pareto) jitter scale, seconds")
    chaos.add_argument("--bandwidth", type=float, default=None,
                       help="throttle to this many bytes/second")
    chaos.add_argument("--corrupt", type=float, default=None,
                       help="per-chunk probability of flipping one byte")
    chaos.add_argument("--truncate", type=float, default=None,
                       help="per-chunk probability of forwarding half the "
                            "chunk then severing the connection")
    chaos.add_argument("--reset", type=float, default=None,
                       help="per-chunk probability of dropping the chunk "
                            "and resetting the connection")
    chaos.add_argument("--partition", action="append", default=None,
                       metavar="START:END",
                       help="full-partition window in seconds since proxy "
                            "start (repeatable): active connections sever, "
                            "new ones are refused")
    chaos.add_argument("--events",
                       help="write the fault-injection event log to this "
                            "JSONL file on exit")
    chaos.add_argument("--duration", type=float, default=None,
                       help="stop after this many seconds (default: run "
                            "until SIGINT/SIGTERM)")

    experiment = sub.add_parser("experiment",
                                help="regenerate a paper table/figure")
    experiment.add_argument("name", help="table1..table9, figure5, figure7")
    experiment.add_argument("--full", action="store_true",
                            help="paper-scale instances")

    sub.add_parser("info", help="version and experiment registry")
    return parser


def _read_totals(path) -> tuple[np.ndarray, list[str]]:
    import csv as _csv
    import pathlib

    labels, values = [], []
    with pathlib.Path(path).open(newline="") as fh:
        for row in _csv.reader(fh):
            if not row:
                continue
            if len(row) == 1:
                values.append(float(row[0]))
                labels.append(f"r{len(values) - 1}")
            else:
                labels.append(row[0].strip())
                values.append(float(row[1]))
    return np.array(values, dtype=np.float64), labels


def _cmd_solve(args) -> int:
    from repro.core.convergence import StoppingRule
    from repro.core.problems import ElasticProblem, FixedTotalsProblem, SAMProblem
    from repro.core.sea import solve_elastic, solve_fixed, solve_sam
    from repro.core.weights import cell_weights, total_weights
    from repro.diagnostics import convergence_report
    from repro.io import read_table_csv, write_table_csv

    x0, row_labels, col_labels = read_table_csv(args.table)
    mask = x0 > 0.0
    gamma = cell_weights(x0, args.weights, mask=mask)
    s0, _ = _read_totals(args.row_totals)
    if s0.size != x0.shape[0]:
        raise SystemExit(
            f"row totals: expected {x0.shape[0]} values, got {s0.size}"
        )

    if args.kind == "sam":
        problem = SAMProblem(
            x0=x0, gamma=gamma, s0=s0,
            alpha=total_weights(s0, args.weights), mask=mask,
        )
        stop = StoppingRule(eps=args.eps or 1e-3, criterion="imbalance",
                            max_iterations=args.max_iterations)
        result = solve_sam(problem, stop=stop, record_history=args.report)
    else:
        if not args.col_totals:
            raise SystemExit(f"--kind {args.kind} requires --col-totals")
        d0, _ = _read_totals(args.col_totals)
        if d0.size != x0.shape[1]:
            raise SystemExit(
                f"column totals: expected {x0.shape[1]} values, got {d0.size}"
            )
        stop = StoppingRule(eps=args.eps or 1e-2, criterion="delta-x",
                            max_iterations=args.max_iterations)
        if args.kind == "fixed":
            problem = FixedTotalsProblem(
                x0=x0, gamma=gamma, s0=s0, d0=d0, mask=mask
            )
            result = solve_fixed(problem, stop=stop, record_history=args.report)
        else:
            problem = ElasticProblem(
                x0=x0, gamma=gamma, s0=s0, d0=d0,
                alpha=total_weights(s0, args.weights),
                beta=total_weights(d0, args.weights), mask=mask,
            )
            result = solve_elastic(problem, stop=stop,
                                   record_history=args.report)

    if args.json:
        import json

        def _finite(v):
            v = float(v)
            return v if np.isfinite(v) else None

        print(json.dumps({
            "kind": args.kind,
            "algorithm": result.algorithm,
            "converged": bool(result.converged),
            "iterations": int(result.iterations),
            "residual": _finite(result.residual),
            "objective": _finite(result.objective),
            "elapsed": round(result.elapsed, 6),
            "x": result.x.tolist(),
            "s": result.s.tolist(),
            "d": result.d.tolist(),
            "row_labels": row_labels,
            "col_labels": col_labels,
        }))
    elif args.report:
        print(convergence_report(result))
    else:
        print(result.summary())
    if args.out:
        write_table_csv(args.out, result.x, row_labels, col_labels)
        if not args.json:
            print(f"wrote {args.out}")
    return 0 if result.converged else 2


def _validate_serve_args(args) -> None:
    """Reject inconsistent serve flags up front, with actionable errors,
    instead of letting them silently misbehave at runtime."""
    if args.max_per_kind is not None and args.max_queue is None:
        raise SystemExit(
            "--max-per-kind is a fair share of the bounded queue; it "
            "requires --max-queue"
        )
    if args.max_per_shard is not None and args.max_queue is None:
        raise SystemExit(
            "--max-per-shard is a fair share of the bounded cluster "
            "queue; it requires --max-queue"
        )
    if args.max_per_shard is not None and args.cluster is None:
        raise SystemExit("--max-per-shard only applies with --cluster")
    if args.drain_deadline < 0:
        raise SystemExit(
            f"--drain-deadline must be >= 0 seconds, got "
            f"{args.drain_deadline}"
        )
    if args.snapshot_every is not None and args.snapshot_every < 1:
        raise SystemExit(
            f"--snapshot-every must be >= 1 request, got "
            f"{args.snapshot_every}"
        )
    if args.snapshot_every is not None and not args.snapshot:
        raise SystemExit("--snapshot-every requires --snapshot")
    if args.max_queue is not None and args.max_queue < 1:
        raise SystemExit(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.max_per_kind is not None and args.max_per_kind < 1:
        raise SystemExit(
            f"--max-per-kind must be >= 1, got {args.max_per_kind}"
        )
    if args.max_per_shard is not None and args.max_per_shard < 1:
        raise SystemExit(
            f"--max-per-shard must be >= 1, got {args.max_per_shard}"
        )
    if args.cluster is not None and args.cluster < 1:
        raise SystemExit(f"--cluster must be >= 1 shard, got {args.cluster}")
    if args.shard:
        from repro.cluster.transport import parse_host_port

        specs = [
            spec for chunk in args.shard
            for spec in chunk.split(",") if spec
        ]
        for spec in specs:
            try:
                parse_host_port(spec)
            except ValueError as exc:
                raise SystemExit(f"--shard: {exc}") from exc
        if args.shard_backend != "net":
            raise SystemExit(
                "--shard addresses are remote shard-serve hosts; they "
                "require --shard-backend net"
            )
        if args.cluster is None:
            args.cluster = len(specs)
        elif args.cluster != len(specs):
            raise SystemExit(
                f"--cluster {args.cluster} does not match the "
                f"{len(specs)} --shard address(es)"
            )
        args.shard = specs
    elif args.shard_backend == "net":
        raise SystemExit(
            "--shard-backend net requires --shard HOST:PORT addresses "
            "(one per remote shard-serve process)"
        )
    if args.fsync < 0:
        raise SystemExit(f"--fsync must be >= 0, got {args.fsync}")
    if args.window < 1:
        raise SystemExit(f"--window must be >= 1, got {args.window}")
    if args.tcp is not None:
        if args.input or args.output:
            raise SystemExit(
                "--tcp serves sockets; --input/--output only apply to "
                "the stdin JSONL session"
            )
        host, sep, port_s = args.tcp.rpartition(":")
        if not sep or not port_s.isdigit() or int(port_s) > 65535:
            raise SystemExit(
                f"--tcp expects HOST:PORT (PORT in 0..65535, 0 = pick a "
                f"free port), got {args.tcp!r}"
            )
    if args.supervise and args.tcp is None:
        raise SystemExit(
            "--supervise runs next to the TCP edge; it requires --tcp"
        )
    if args.supervise_interval <= 0:
        raise SystemExit(
            f"--supervise-interval must be > 0 seconds, got "
            f"{args.supervise_interval}"
        )
    if args.action_journal and not args.supervise:
        raise SystemExit("--action-journal requires --supervise")
    if args.prometheus and not args.stats:
        raise SystemExit(
            "--prometheus formats the exit stats; it requires --stats"
        )


def _build_service(args):
    """Construct the :class:`SolveService` or :class:`ClusterService`
    the serve flags describe (shared by the stdin JSONL session and the
    TCP edge)."""
    from repro.service import SolveService

    kwargs = dict(
        workers=args.workers,
        backend=args.backend,
        batching=not args.no_batch,
        warm_start=not args.no_warm_start,
        max_batch=max(args.window, 1),
        default_deadline_s=args.deadline,
        default_retries=max(args.retries, 0),
        fsync=max(args.fsync, 0),
    )
    if args.recover and not args.journal:
        raise SystemExit("--recover requires --journal")
    if args.cluster is not None:
        # Sharded tier: --journal/--snapshot are directories of
        # per-shard files; admission moves to the router edge.
        from repro.cluster import ClusterService

        kwargs.update(
            shard_backend=args.shard_backend,
            snapshot_dir=args.snapshot,
            snapshot_every=args.snapshot_every,
            max_queue=args.max_queue,
            admission_policy=args.admission,
            max_per_shard=args.max_per_shard,
        )
        if args.shard:
            kwargs["shard_specs"] = args.shard
        if args.recover:
            return ClusterService.recover(
                args.journal, shards=args.cluster, **kwargs
            )
        return ClusterService(
            shards=args.cluster, journal_dir=args.journal, **kwargs
        )
    kwargs.update(
        snapshot_path=args.snapshot,
        snapshot_every=args.snapshot_every,
        max_queue=args.max_queue,
        admission_policy=args.admission,
        max_per_kind=args.max_per_kind,
    )
    if args.recover:
        return SolveService.recover(args.journal, **kwargs)
    return SolveService(journal=args.journal, **kwargs)


def _serve_tcp_edge(args) -> int:
    """The ``serve --tcp`` path: run the asyncio edge until
    SIGTERM/SIGINT, then drain gracefully and exit 0."""
    import asyncio
    import json

    from repro.edge import serve_tcp

    host, _, port_s = args.tcp.rpartition(":")
    with _build_service(args) as svc:
        if args.recover and svc.pending:
            # Crashed clients cannot reattach to their old connection;
            # answer the journal's unanswered requests now so the
            # responses are journaled (exactly once) before new
            # traffic arrives.
            svc.drain()
        supervisor = None
        if args.supervise:
            from repro.supervisor import Supervisor

            supervisor = Supervisor(
                svc,
                interval_s=args.supervise_interval,
                journal=args.action_journal,
            )

        async def _run():
            loop = asyncio.get_running_loop()
            ready = loop.create_future()

            async def _announce():
                # Port 0 binds a free port; tell the operator (and the
                # tests) which one before traffic can arrive.
                port = await ready
                print(
                    f"edge listening on {host or '127.0.0.1'}:{port}",
                    file=sys.stderr, flush=True,
                )

            announce = asyncio.ensure_future(_announce())
            try:
                return await serve_tcp(
                    svc,
                    host or "127.0.0.1",
                    int(port_s),
                    drain_deadline_s=args.drain_deadline,
                    ready=ready,
                    window=max(args.window, 1),
                    default_deadline_s=args.deadline,
                    include_matrix=not args.no_matrix,
                    supervisor=supervisor,
                )
            finally:
                announce.cancel()

        server = asyncio.run(_run())
        if supervisor is not None:
            supervisor.journal.close()
        if args.stats:
            if args.prometheus:
                text = server.stats.metrics_text()
                if server.final_service_stats_obj is not None:
                    text += server.final_service_stats_obj.metrics_text()
                print(text, end="", file=sys.stderr)
            else:
                payload = dict(server.stats.as_dict())
                if server.final_service_stats is not None:
                    payload["service"] = server.final_service_stats
                print(json.dumps(payload), file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    import contextlib
    import json
    import pathlib
    import signal

    from repro.errors import ReproError
    from repro.service.wire import (
        RequestError,
        dump_response,
        error_line,
        read_requests,
    )

    _validate_serve_args(args)
    if args.tcp is not None:
        return _serve_tcp_edge(args)

    class _GracefulShutdown(Exception):
        """Raised by the signal handler to unwind into the drain path."""

    def _handler(signum, frame):  # noqa: ARG001 — signal handler signature
        raise _GracefulShutdown(signum)

    # SIGTERM/SIGINT trigger a graceful drain: admission stops, queued
    # work is answered under --drain-deadline, the rest stays journaled
    # for the next --recover, and the process exits 0.  Handlers only
    # install on the main thread; elsewhere (tests calling main()
    # in-thread) the flags still work, just without signal-driven drain.
    restore: list[tuple[int, object]] = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            restore.append((sig, signal.signal(sig, _handler)))
        except ValueError:
            pass

    any_error = False
    any_nonconverged = False
    graceful = False
    try:
        with contextlib.ExitStack() as stack:
            if args.input:
                in_stream = stack.enter_context(pathlib.Path(args.input).open())
            else:
                in_stream = sys.stdin
            if args.output:
                out_stream = stack.enter_context(
                    pathlib.Path(args.output).open("w")
                )
            else:
                out_stream = sys.stdout

            def _write(resp) -> None:
                nonlocal any_error, any_nonconverged
                out_stream.write(
                    dump_response(resp, include_matrix=not args.no_matrix)
                    + "\n"
                )
                if not resp.ok:
                    any_error = True
                elif not resp.converged:
                    any_nonconverged = True

            def _flush(svc) -> None:
                # collect() carries responses produced outside drain():
                # shed-oldest victims and block-policy backpressure
                # drains; merge them back into submission order.
                for resp in sorted(
                    svc.collect() + svc.drain(),
                    key=lambda r: r.submitted_at,
                ):
                    _write(resp)
                out_stream.flush()

            svc = _build_service(args)
            stack.enter_context(svc)
            try:
                if args.recover and svc.pending:
                    # Answer the journal's unanswered requests (exactly
                    # once) before reading any new input.
                    _flush(svc)
                for request in read_requests(in_stream):
                    if isinstance(request, RequestError):
                        # A malformed line answers in stream position with
                        # a structured invalid-request error; the session
                        # lives on.
                        _flush(svc)  # keep responses in request order
                        out_stream.write(error_line(request) + "\n")
                        out_stream.flush()
                        any_error = True
                        continue
                    try:
                        svc.submit(request)
                    except ReproError as exc:
                        # Admission refusals (overloaded,
                        # duplicate-request) answer in stream position
                        # with the taxonomy tag; the session lives on.
                        _flush(svc)
                        out_stream.write(json.dumps({
                            "id": request.id,
                            "status": "error",
                            "error": {"kind": exc.kind, "message": str(exc)},
                        }, separators=(",", ":")) + "\n")
                        out_stream.flush()
                        any_error = True
                        continue
                    if svc.pending >= max(args.window, 1):
                        _flush(svc)
                _flush(svc)
            except _GracefulShutdown:
                graceful = True
                drained = svc.shutdown(deadline_s=args.drain_deadline)
                for resp in sorted(
                    svc.collect() + drained, key=lambda r: r.submitted_at
                ):
                    _write(resp)
                out_stream.flush()
            if args.stats:
                if args.prometheus:
                    print(svc.stats().metrics_text(), end="",
                          file=sys.stderr)
                else:
                    print(json.dumps(svc.stats().as_dict()),
                          file=sys.stderr)
    finally:
        for sig, old in restore:
            signal.signal(sig, old)

    if graceful:
        return 0
    if any_error:
        return 1
    return 2 if any_nonconverged else 0


def _cmd_shard_serve(args) -> int:
    """Host one :class:`SolveService` shard behind a
    :class:`~repro.cluster.net.ShardServer` until SIGTERM/SIGINT (or a
    router-sent ``shutdown``/``close``), then exit 0."""
    import signal

    from repro.cluster.net import ShardServer
    from repro.service import SolveService

    host, sep, port_s = args.tcp.rpartition(":")
    if not sep or not port_s.isdigit() or int(port_s) > 65535:
        raise SystemExit(
            f"--tcp expects HOST:PORT (PORT in 0..65535, 0 = pick a "
            f"free port), got {args.tcp!r}"
        )
    if args.recover and not args.journal:
        raise SystemExit("--recover requires --journal")
    if args.fsync < 0:
        raise SystemExit(f"--fsync must be >= 0, got {args.fsync}")
    if args.window < 1:
        raise SystemExit(f"--window must be >= 1, got {args.window}")

    kwargs = dict(
        workers=args.workers,
        backend=args.backend,
        batching=not args.no_batch,
        warm_start=not args.no_warm_start,
        max_batch=max(args.window, 1),
        default_deadline_s=args.deadline,
        default_retries=max(args.retries, 0),
        fsync=max(args.fsync, 0),
        snapshot_path=args.snapshot,
    )
    if args.recover:
        svc = SolveService.recover(args.journal, **kwargs)
    else:
        svc = SolveService(journal=args.journal, **kwargs)

    with svc:
        server = ShardServer(
            svc, host=host or "127.0.0.1", port=int(port_s),
            shard_id=args.shard_id,
        )
        # Port 0 binds a free port; announce the real one before any
        # router can need it (tests and the bench parse this line).
        print(f"shard listening on {server.address}",
              file=sys.stderr, flush=True)

        def _handler(signum, frame):  # noqa: ARG001 — signal signature
            server.stop()

        restore: list[tuple[int, object]] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                restore.append((sig, signal.signal(sig, _handler)))
            except ValueError:
                pass  # not the main thread (in-process tests)
        try:
            server.serve_forever()
        finally:
            for sig, old in restore:
                signal.signal(sig, old)
    return 0


def _cmd_chaos_proxy(args) -> int:
    """Run a :class:`~repro.chaos.ChaosProxy` until SIGINT/SIGTERM (or
    ``--duration``), then write the event log and exit 0."""
    import asyncio
    import dataclasses

    from repro.chaos import ChaosProxy, ChaosSchedule

    def _addr(text: str, flag: str) -> tuple[str, int]:
        host, sep, port_s = text.rpartition(":")
        if not sep or not port_s.isdigit() or int(port_s) > 65535:
            raise SystemExit(
                f"{flag} expects HOST:PORT (PORT in 0..65535), got {text!r}"
            )
        return host or "127.0.0.1", int(port_s)

    listen_host, listen_port = _addr(args.listen, "--listen")
    upstream_host, upstream_port = _addr(args.upstream, "--upstream")

    schedule = (ChaosSchedule.load(args.schedule) if args.schedule
                else ChaosSchedule())
    overrides = {}
    for flag, field_name in (
        ("seed", "seed"), ("latency", "latency_s"), ("jitter", "jitter_s"),
        ("bandwidth", "bandwidth_bps"), ("corrupt", "corrupt_fraction"),
        ("truncate", "truncate_fraction"), ("reset", "reset_fraction"),
    ):
        value = getattr(args, flag)
        if value is not None:
            overrides[field_name] = value
    if args.partition:
        windows = []
        for spec in args.partition:
            start_s, sep, end_s = spec.partition(":")
            try:
                start, end = float(start_s), float(end_s)
            except ValueError:
                sep = ""
            if not sep or end <= start or start < 0:
                raise SystemExit(
                    f"--partition expects START:END seconds with "
                    f"0 <= START < END, got {spec!r}"
                )
            windows.append((start, end))
        overrides["partitions"] = tuple(windows)
    if overrides:
        schedule = dataclasses.replace(schedule, **overrides)

    async def _run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        import contextlib
        import signal

        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, stop.set)
        async with ChaosProxy(
            upstream_host, upstream_port, schedule,
            host=listen_host, port=listen_port,
        ) as proxy:
            print(
                f"chaos proxy listening on {listen_host}:{proxy.port} "
                f"-> {upstream_host}:{upstream_port}",
                file=sys.stderr, flush=True,
            )
            if args.duration is not None:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(stop.wait(), args.duration)
            else:
                await stop.wait()
            if args.events:
                proxy.write_events(args.events)
            print(
                f"chaos proxy injected {proxy.faults_injected} faults "
                f"({dict(proxy.injected)})",
                file=sys.stderr, flush=True,
            )

    asyncio.run(_run())
    return 0


def _cmd_experiment(args) -> int:
    from repro.harness import run_experiment

    result = run_experiment(args.name, full=args.full or None)
    print(result.render())
    return 0 if result.all_shapes_hold else 2


def _cmd_info() -> int:
    import repro
    from repro.harness import EXPERIMENTS

    print(f"repro {repro.__version__} — splitting equilibration algorithm")
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "solve":
        return _cmd_solve(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "shard-serve":
        return _cmd_shard_serve(args)
    if args.command == "chaos-proxy":
        return _cmd_chaos_proxy(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    return _cmd_info()


if __name__ == "__main__":
    sys.exit(main())
