"""SolveResult / PhaseCounts accounting."""

import numpy as np
import pytest

from repro.core.result import PhaseCounts, SolveResult


class TestPhaseCounts:
    def test_equilibration_matches_paper_formula(self):
        c = PhaseCounts()
        c.add_equilibration(rows=10, length=100)
        assert c.parallel_ops == pytest.approx(
            10 * (9 * 100 + 100 * np.log(100))
        )
        assert c.parallel_phases == 1

    def test_zero_length_charges_nothing(self):
        c = PhaseCounts()
        c.add_equilibration(rows=5, length=0)
        assert c.parallel_ops == 0.0
        assert c.parallel_phases == 1

    def test_convergence_check(self):
        c = PhaseCounts()
        c.add_convergence_check(10, 20, kappa=2.0)
        assert c.serial_ops == 400.0
        assert c.serial_checks == 1

    def test_matvec_counted_in_both(self):
        c = PhaseCounts()
        c.add_matvec(100)
        assert c.matvec_ops == 10_000.0
        assert c.parallel_ops == 10_000.0

    def test_merged(self):
        a = PhaseCounts(parallel_ops=1.0, serial_ops=2.0, parallel_phases=3,
                        serial_checks=4, cells=10, matvec_ops=0.5)
        b = PhaseCounts(parallel_ops=10.0, serial_ops=20.0, parallel_phases=30,
                        serial_checks=40, cells=5, matvec_ops=5.0)
        m = a.merged_with(b)
        assert m.parallel_ops == 11.0
        assert m.serial_ops == 22.0
        assert m.parallel_phases == 33
        assert m.serial_checks == 44
        assert m.cells == 10  # max, not sum
        assert m.matvec_ops == 5.5


class TestSolveResult:
    def _result(self, converged=True):
        return SolveResult(
            x=np.ones((2, 2)), s=np.ones(2), d=np.ones(2),
            lam=np.zeros(2), mu=np.zeros(2),
            converged=converged, iterations=7, residual=1e-5,
            objective=3.25, elapsed=0.125, algorithm="SEA-test",
        )

    def test_summary_contains_key_facts(self):
        s = self._result().summary()
        assert "SEA-test" in s
        assert "7 iterations" in s
        assert "converged" in s

    def test_summary_flags_nonconvergence(self):
        assert "NOT converged" in self._result(converged=False).summary()
