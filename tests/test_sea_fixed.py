"""SEA fixed-totals solver: optimality, feasibility, dual behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_fixed_problem, reference_fixed_solution
from repro.core.convergence import StoppingRule
from repro.core.dual import grad_zeta_fixed, zeta_fixed
from repro.core.kkt import kkt_violations
from repro.core.problems import FixedTotalsProblem
from repro.core.sea import solve_fixed

TIGHT = StoppingRule(eps=1e-9, criterion="delta-x", max_iterations=5000)


class TestFeasibilityAndOptimality:
    def test_matches_scipy_oracle(self, rng):
        problem = random_fixed_problem(rng, 4, 5)
        result = solve_fixed(problem, stop=TIGHT)
        ref = reference_fixed_solution(problem)
        assert result.objective == pytest.approx(
            problem.objective(ref), rel=1e-4, abs=1e-6
        )
        np.testing.assert_allclose(result.x, ref, atol=1e-2 * ref.max() + 1e-4)

    def test_kkt_conditions_hold(self, rng):
        problem = random_fixed_problem(rng, 10, 7, total_factor_low=0.3)
        result = solve_fixed(problem, stop=TIGHT)
        v = kkt_violations(problem, result.x, result.lam, result.mu)
        scale = float(problem.s0.max())
        assert v["col"] < 1e-8 * scale  # column phase ran last: exact
        assert v["row"] < 1e-6 * scale
        assert v["nonneg"] == 0.0
        assert v["stationarity"] < 1e-6 * scale
        assert v["complementarity"] < 1e-6 * scale

    def test_sparse_problem(self, rng):
        problem = random_fixed_problem(rng, 12, 9, density=0.4)
        result = solve_fixed(problem, stop=TIGHT)
        assert result.converged
        assert np.all(result.x[~problem.mask] == 0.0)
        v = kkt_violations(problem, result.x, result.lam, result.mu)
        assert max(v.values()) < 1e-5 * float(problem.s0.max())

    def test_base_already_feasible_is_fixed_point(self):
        x0 = np.array([[1.0, 2.0], [3.0, 4.0]])
        problem = FixedTotalsProblem(
            x0=x0, gamma=np.ones((2, 2)),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
        )
        result = solve_fixed(problem, stop=TIGHT)
        np.testing.assert_allclose(result.x, x0, atol=1e-10)
        assert result.iterations <= 2

    def test_chi_square_weights(self, rng):
        x0 = rng.uniform(1.0, 100.0, (8, 8))
        problem = FixedTotalsProblem(
            x0=x0, gamma=1.0 / x0,
            s0=2 * x0.sum(axis=1), d0=2 * x0.sum(axis=0),
        )
        result = solve_fixed(problem, stop=TIGHT)
        v = kkt_violations(problem, result.x, result.lam, result.mu)
        assert max(v.values()) < 1e-5 * float(problem.s0.max())


class TestDualAscent:
    def test_zeta_monotone_over_iterations(self, rng):
        """Each SEA iteration is a block dual maximization, so zeta_3
        never decreases along (lam^{t+1}, mu^t) -> (lam^{t+1}, mu^{t+1})."""
        problem = random_fixed_problem(rng, 9, 6, total_factor_low=0.3)
        values = []

        def tracking_kernel(b, sl, target, a=None, c=None):
            from repro.equilibration.exact import solve_piecewise_linear
            return solve_piecewise_linear(b, sl, target, a=a, c=c)

        # Run manually a few alternations and track the dual.
        from repro.equilibration.exact import solve_piecewise_linear
        mask = problem.mask
        gamma_safe = np.where(mask, problem.gamma, 1.0)
        base = np.where(mask, -2.0 * gamma_safe * problem.x0, 0.0)
        slopes = np.where(mask, 1.0 / (2.0 * gamma_safe), 0.0)
        mu = np.zeros(problem.shape[1])
        for _ in range(20):
            lam = solve_piecewise_linear(base - mu[None, :], slopes, problem.s0)
            values.append(zeta_fixed(problem, lam, mu))
            mu = solve_piecewise_linear(
                base.T - lam[None, :], slopes.T.copy(), problem.d0
            )
            values.append(zeta_fixed(problem, lam, mu))
        diffs = np.diff(values)
        assert np.all(diffs > -1e-6 * max(abs(values[0]), 1.0))

    def test_dual_gradient_vanishes_at_solution(self, rng):
        problem = random_fixed_problem(rng, 8, 8)
        result = solve_fixed(problem, stop=TIGHT)
        g_lam, g_mu = grad_zeta_fixed(problem, result.lam, result.mu)
        scale = float(problem.s0.max())
        assert np.max(np.abs(g_lam)) < 1e-6 * scale
        assert np.max(np.abs(g_mu)) < 1e-6 * scale


class TestStoppingBehaviour:
    def test_budget_exhaustion_reported(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.2)
        result = solve_fixed(
            problem, stop=StoppingRule(eps=1e-14, max_iterations=3)
        )
        assert not result.converged
        assert result.iterations == 3

    def test_history_recorded(self, rng):
        problem = random_fixed_problem(rng, 6, 6)
        result = solve_fixed(problem, stop=TIGHT, record_history=True)
        assert len(result.history) == result.iterations
        assert result.history[-1] == pytest.approx(result.residual)

    def test_check_every_skips_checks(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.2)
        stop = StoppingRule(eps=1e-9, check_every=3, max_iterations=300)
        result = solve_fixed(problem, stop=stop)
        assert result.converged
        assert result.counts.serial_checks < result.iterations

    def test_counts_accumulate(self, rng):
        problem = random_fixed_problem(rng, 6, 4)
        result = solve_fixed(problem, stop=TIGHT)
        c = result.counts
        assert c.parallel_phases == 2 * result.iterations
        assert c.parallel_ops > 0
        assert c.cells == 24

    def test_warm_start_mu(self, rng):
        problem = random_fixed_problem(rng, 8, 8, total_factor_low=0.3)
        cold = solve_fixed(problem, stop=TIGHT)
        warm = solve_fixed(problem, stop=TIGHT, mu0=cold.mu)
        assert warm.iterations <= cold.iterations
        assert warm.objective == pytest.approx(cold.objective, rel=1e-8)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), m=st.integers(2, 9), n=st.integers(2, 9))
def test_solution_feasible_and_complementary(seed, m, n):
    rng = np.random.default_rng(seed)
    problem = random_fixed_problem(rng, m, n, total_factor_low=0.3)
    result = solve_fixed(problem, stop=TIGHT)
    scale = float(problem.s0.max()) + 1.0
    assert np.all(result.x >= 0)
    assert np.max(np.abs(result.x.sum(axis=0) - problem.d0)) < 1e-7 * scale
    v = kkt_violations(problem, result.x, result.lam, result.mu)
    assert max(v.values()) < 1e-5 * scale
