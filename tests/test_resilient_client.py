"""The resilient edge client and server-side sessions.

The contract under test is end-to-end exactly-once despite arbitrary
reconnects: a session-scoped request id is solved once no matter how
many times the client resubmits it, and the answer reaches the client
even when the socket that carried the original submission is long dead.
Three server-side mechanisms make that true, each pinned here:

* **replay** — an id already answered re-delivers the parked response
  from the session cache (never re-enters the service);
* **rebind** — an id still in flight whose socket died is re-bound to
  the resubmitting connection;
* **dedup**  — an id in flight on a *live* socket answers a structured
  duplicate-request error, which the client recognizes and ignores.

Timeout satellites ride along: ``EdgeClient.connect``/``recv``/
``request`` accept ``timeout=`` and raise the classified
:class:`~repro.errors.DeadlineExceededError` on expiry.
"""

import asyncio
import json
import socket

import pytest

from conftest import random_fixed_problem
from repro.edge import EdgeClient, EdgeServer, ResilientEdgeClient
from repro.errors import DeadlineExceededError, DuplicateRequestError
from repro.chaos import ChaosProxy, ChaosSchedule
from repro.service import SolveService
from repro.service.request import SolveRequest
from repro.service.wire import request_to_jsonable


def _line(problem, rid=None, **options) -> dict:
    return request_to_jsonable(
        SolveRequest(problem=problem, id=rid, **options)
    )


async def _start(svc, **kw) -> EdgeServer:
    server = EdgeServer(svc, port=0, **kw)
    await server.start()
    return server


async def _hello(host, port, session):
    """Open a raw client and join ``session``; returns the client."""
    client = await EdgeClient.connect(host, port)
    await client.send_raw(json.dumps({"session": session}))
    ack = await client.recv()
    assert ack["session"] == session and ack["status"] == "ok"
    return client


async def _wait_for(predicate, timeout=5.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition never became true")
        await asyncio.sleep(0.01)


class TestTimeouts:
    def test_recv_timeout_raises_classified_deadline_error(self, rng):
        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    with pytest.raises(DeadlineExceededError,
                                       match="no response line"):
                        await client.recv(timeout=0.05)
                    # The stream survives the timeout: a real request
                    # afterwards still answers.
                    resp = await client.request(
                        _line(random_fixed_problem(rng, 3, 3), "r1"),
                        timeout=30.0,
                    )
                await server.close()
            return resp

        resp = asyncio.run(scenario())
        assert resp["id"] == "r1" and resp["status"] == "ok"

    def test_connect_timeout_raises_classified_deadline_error(self):
        # A listener with an exhausted backlog never completes the
        # handshake: SYNs queue in the kernel until the timeout fires.
        gate = socket.socket()
        gate.bind(("127.0.0.1", 0))
        gate.listen(0)
        fillers = []
        for _ in range(4):
            filler = socket.socket()
            filler.setblocking(False)
            filler.connect_ex(gate.getsockname())
            fillers.append(filler)

        async def scenario():
            with pytest.raises(DeadlineExceededError, match="connect"):
                await EdgeClient.connect(
                    *gate.getsockname(), timeout=0.2
                )

        try:
            asyncio.run(scenario())
        finally:
            for filler in fillers:
                filler.close()
            gate.close()

    def test_request_timeout_on_resilient_client(self, rng):
        """A partitioned (never-connecting) resilient client fails a
        request at its deadline with the classified error, not a hang."""
        async def scenario():
            gate = socket.socket()
            gate.bind(("127.0.0.1", 0))
            gate.listen(0)
            fillers = []
            for _ in range(4):
                filler = socket.socket()
                filler.setblocking(False)
                filler.connect_ex(gate.getsockname())
                fillers.append(filler)
            try:
                async with ResilientEdgeClient(
                    *gate.getsockname(), session="t",
                    connect_timeout=0.1, attempt_timeout=0.1, seed=0,
                ) as client:
                    with pytest.raises(DeadlineExceededError,
                                       match="unanswered"):
                        await client.request(
                            _line(random_fixed_problem(rng, 3, 3), "r1"),
                            timeout=0.5,
                        )
                    return client.stats.as_dict()
            finally:
                for filler in fillers:
                    filler.close()
                gate.close()

        stats = asyncio.run(scenario())
        assert stats["deadline_failures"] == 1
        assert stats["resolved"] == 0


class TestSessions:
    def test_parked_answer_replays_to_a_reconnect(self, rng, tmp_path):
        """An answer produced while the socket was dead is parked in the
        session cache and re-delivered on resubmission — the service
        solves exactly once (journal ground truth)."""
        problem = random_fixed_problem(rng, 3, 3)
        journal = tmp_path / "edge.jsonl"

        async def scenario():
            with SolveService(journal=str(journal)) as svc:
                # Huge window + flush interval: nothing drains until we
                # say so, giving deterministic control of dispatch time.
                server = await _start(svc, window=100, flush_interval=60)
                first = await _hello("127.0.0.1", server.port, "sess-a")
                await first.send(_line(problem, "r1"))
                await _wait_for(lambda: server.stats.requests == 1)
                await first.close()
                await _wait_for(
                    lambda: server.stats.connections_open == 0
                )
                # Dispatch happens with no socket alive: the answer
                # parks instead of dropping.
                await server._drain_now()
                assert server.stats.parked_responses == 1
                second = await _hello("127.0.0.1", server.port, "sess-a")
                await second.send(_line(problem, "r1"))  # resubmission
                resp = await second.recv()
                await second.close()
                stats = server.stats
                await server.drain(10)
            return resp, stats

        resp, stats = asyncio.run(scenario())
        assert resp["id"] == "r1" and resp["status"] == "ok"
        assert stats.session_replays == 1
        assert stats.session_resumes == 1
        records = [json.loads(l) for l in journal.read_text().splitlines()]
        response_ids = [r["id"] for r in records if r["type"] == "response"]
        assert response_ids.count("s:sess-a:r1") == 1

    def test_inflight_id_rebinds_to_the_new_connection(self, rng):
        """A resubmitted id still being solved re-binds to the new
        socket instead of being refused or re-solved."""
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=100, flush_interval=60)
                first = await _hello("127.0.0.1", server.port, "sess-b")
                await first.send(_line(problem, "r1"))
                await _wait_for(lambda: server.stats.requests == 1)
                await first.close()
                await _wait_for(
                    lambda: server.stats.connections_open == 0
                )
                # Still queued (nothing drained yet) when the client
                # comes back and resubmits.
                second = await _hello("127.0.0.1", server.port, "sess-b")
                await second.send(_line(problem, "r1"))
                await _wait_for(lambda: server.stats.session_rebinds == 1)
                await server._drain_now()
                resp = await second.recv()
                await second.close()
                stats = server.stats
                await server.close()
            return resp, stats

        resp, stats = asyncio.run(scenario())
        assert resp["id"] == "r1" and resp["status"] == "ok"
        assert stats.session_rebinds == 1
        assert stats.requests == 1  # the resubmission never re-entered

    def test_duplicate_on_live_socket_is_refused(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=100, flush_interval=60)
                client = await _hello("127.0.0.1", server.port, "sess-c")
                await client.send(_line(problem, "r1"))
                await _wait_for(lambda: server.stats.requests == 1)
                # Same id again on the SAME live socket: refused, the
                # original keeps its slot.  (In-order delivery holds
                # the refusal behind the pending answer.)
                await client.send(_line(problem, "r1"))
                await _wait_for(
                    lambda: server.stats.overload_rejections == 1
                )
                await server._drain_now()
                answer = await client.recv()
                refusal = await client.recv()
                await client.close()
                await server.close()
            return refusal, answer

        refusal, answer = asyncio.run(scenario())
        assert refusal["status"] == "error"
        assert refusal["error"]["kind"] == DuplicateRequestError.kind
        assert answer["id"] == "r1" and answer["status"] == "ok"

    def test_invalid_session_id_answers_structured_error(self):
        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                client = await EdgeClient.connect("127.0.0.1", server.port)
                await client.send_raw(json.dumps({"session": "bad/sid!"}))
                ack = await client.recv()
                await client.close()
                await server.close()
            return ack

        ack = asyncio.run(scenario())
        assert ack["status"] == "error"
        assert ack["error"]["kind"] == "invalid-request"

    def test_session_cache_is_bounded(self, rng):
        problems = [random_fixed_problem(rng, 3, 3) for _ in range(4)]

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1, session_cache=2)
                client = await _hello("127.0.0.1", server.port, "sess-d")
                for i, p in enumerate(problems):
                    resp = await client.request(_line(p, f"r{i}"))
                    assert resp["status"] == "ok"
                cache = server._sessions["sess-d"]
                await client.close()
                await server.close()
            return dict(cache)

        cache = asyncio.run(scenario())
        assert len(cache) == 2
        assert set(cache) == {"s:sess-d:r2", "s:sess-d:r3"}


class TestResilientExactlyOnce:
    def test_exactly_once_through_a_reset_heavy_proxy(self, rng, tmp_path):
        """The headline invariant: every request answered exactly once
        through a proxy that resets connections, with the journal as
        ground truth for zero-double-solve."""
        problems = [random_fixed_problem(rng, 3, 4) for _ in range(16)]
        journal = tmp_path / "edge.jsonl"

        async def scenario():
            with SolveService(journal=str(journal)) as svc:
                server = await _start(
                    svc, window=4, include_matrix=False
                )
                schedule = ChaosSchedule(
                    seed=7, reset_fraction=0.15, corrupt_fraction=0.05,
                    latency_s=0.001, start_after_chunks=1,
                )
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    async with ResilientEdgeClient(
                        "127.0.0.1", proxy.port, session="tough",
                        attempt_timeout=0.5, seed=3,
                    ) as client:
                        responses = await asyncio.gather(*[
                            client.request(p, timeout=60.0)
                            for p in problems
                        ])
                        stats = client.stats.as_dict()
                await server.drain(30)
                edge = server.stats
            return responses, stats, edge

        responses, stats, edge = asyncio.run(scenario())
        assert len(responses) == len(problems)
        assert all(r["status"] == "ok" for r in responses)
        # Distinct ids answered exactly once each, client-side...
        ids = [r["id"] for r in responses]
        assert sorted(ids) == sorted(set(ids))
        assert stats["resolved"] == len(problems)
        assert stats["deadline_failures"] == 0
        # ...and service-side: one journaled response per id, ever.
        records = [json.loads(l) for l in journal.read_text().splitlines()]
        by_id: dict = {}
        for r in records:
            if r["type"] == "response":
                by_id[r["id"]] = by_id.get(r["id"], 0) + 1
        assert len(by_id) == len(problems)
        assert all(count == 1 for count in by_id.values())

    def test_client_survives_a_full_partition_window(self, rng):
        problems = [random_fixed_problem(rng, 3, 3) for _ in range(3)]

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1, include_matrix=False)
                schedule = ChaosSchedule(partitions=((0.1, 0.5),))
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    async with ResilientEdgeClient(
                        "127.0.0.1", proxy.port, session="part",
                        connect_timeout=0.2, attempt_timeout=0.3, seed=5,
                    ) as client:
                        first = await client.request(
                            problems[0], timeout=30.0
                        )
                        await asyncio.sleep(0.15)  # inside the window
                        rest = await asyncio.gather(*[
                            client.request(p, timeout=30.0)
                            for p in problems[1:]
                        ])
                        stats = client.stats.as_dict()
                    injected = dict(proxy.injected)
                await server.drain(10)
            return [first, *rest], stats, injected

        responses, stats, injected = asyncio.run(scenario())
        assert all(r["status"] == "ok" for r in responses)
        refused = injected["partition-refused"]
        severed = injected["partition-severed"]
        assert refused + severed >= 1  # the partition actually bit
        assert stats["resolved"] == 3

    def test_duplicate_id_reuse_is_rejected_client_side(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1, include_matrix=False)
                async with ResilientEdgeClient(
                    "127.0.0.1", server.port, session="dup", seed=0
                ) as client:
                    await client.request(_line(problem, "r1"), timeout=30.0)
                    with pytest.raises(DuplicateRequestError):
                        await client.submit(_line(problem, "r1"))
                await server.close()

        asyncio.run(scenario())
