"""The network shard transport: replicated journals, host-loss failover.

Three layers of proof:

1. **Interface parity** — the router-facing cluster suites from
   test_cluster.py re-run verbatim against thread-hosted
   :class:`ShardServer` replicas (``TestNetClusterService`` /
   ``TestNetEdgeAdmission``): NetShard is a drop-in shard backend.
2. **Shipping semantics** — synchronous journal shipping keeps the
   router-side replica byte-for-byte equal to the remote WAL, catch-up
   heals any replica after reconnect, and service errors cross the
   wire with their taxonomy intact.
3. **Host loss** — killing a remote host (thread-hosted here; real
   SIGKILLed subprocesses behind chaos proxies in
   ``TestNetChaosMatrix``) loses nothing, double-answers nothing, and
   reproduces every matrix bit-identically from the shipped replica
   alone — the dead host's own journal is deleted first.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import re
import shutil
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import test_cluster as tc
from conftest import random_fixed_problem
from repro.chaos import ChaosProxy, ChaosSchedule
from repro.cluster import (
    ClusterService,
    NetShard,
    ProcessShard,
    ShardServer,
    parse_host_port,
)
from repro.cluster.worker import ShardCrashedError
from repro.core.api import solve
from repro.errors import DuplicateRequestError
from repro.service import SolveService
from repro.service.request import SolveRequest

# The durability idiom, network-wide: deterministic replay needs no
# warm state and no fusion (both entangle answers with history).
SVC_KW = dict(workers=1, backend="serial", warm_start=False, batching=False)

# Loopback connects either succeed or refuse instantly, so failover
# tests can keep the reconnect budget tight.
FAST_NET = dict(connect_timeout=2.0, max_reconnects=2, backoff_base=0.02,
                backoff_max=0.1, seed=1)


class _Host:
    """One thread-hosted 'remote machine': a SolveService + ShardServer."""

    def __init__(self, tmp_path, name, *, fsync=1):
        self.name = name
        self.journal_path = pathlib.Path(tmp_path) / f"{name}-local.journal"
        self.service = SolveService(
            journal=self.journal_path, fsync=fsync, **SVC_KW
        )
        self.server = ShardServer(self.service, shard_id=name)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True, name=name
        )
        self.thread.start()

    @property
    def spec(self) -> str:
        return self.server.address

    def die(self, *, lose_disk=False) -> None:
        """Host loss: the listener and any live connection drop hard —
        no drain, no graceful close; optionally the disk goes with it."""
        self.server.stop()
        self.thread.join(timeout=10)
        if lose_disk:
            self.journal_path.unlink(missing_ok=True)

    def close(self) -> None:
        self.server.stop()
        self.thread.join(timeout=10)
        self.service.close()


def net_cluster(tmp_path, shards=3, **kwargs):
    """A net-backed cluster over fresh thread-hosted replicas; the
    signature mirrors test_cluster.inline_cluster so those suites can
    run against it unchanged."""
    # Remote-service knobs live on the _Host services, not the router.
    kwargs.pop("warm_start", None)
    kwargs.pop("batching", None)
    hosts = kwargs.pop("hosts", None)
    if hosts is None:
        hosts = [_Host(tmp_path, f"remote-{i}") for i in range(shards)]
    kwargs.setdefault("journal_dir", pathlib.Path(tmp_path) / "replicas")
    kwargs.setdefault("net_options", dict(FAST_NET))
    kwargs.setdefault("fsync", 1)
    svc = ClusterService(
        shards=shards, shard_backend="net",
        shard_specs=[h.spec for h in hosts], **kwargs,
    )
    svc._test_hosts = hosts
    return svc


class _NetBackendFixture:
    """Re-run a test_cluster suite with inline_cluster swapped for the
    network transport (unique tmp dir per test via the fixture)."""

    @pytest.fixture(autouse=True)
    def _swap_backend(self, tmp_path, monkeypatch):
        calls = [0]

        def factory(shards=3, **kwargs):
            calls[0] += 1
            base = tmp_path / f"net-{calls[0]}"
            base.mkdir(parents=True, exist_ok=True)
            return net_cluster(base, shards=shards, **kwargs)

        monkeypatch.setattr(tc, "inline_cluster", factory)


class TestNetClusterService(_NetBackendFixture, tc.TestClusterService):
    """test_cluster.TestClusterService over real TCP shards."""


class TestNetEdgeAdmission(_NetBackendFixture, tc.TestEdgeAdmission):
    """test_cluster.TestEdgeAdmission over real TCP shards."""


class TestTransport:
    def test_parse_host_port(self):
        assert parse_host_port("10.0.0.7:7800") == ("10.0.0.7", 7800)
        for bad in ("nonsense", "host:", "host:0", "host:70000", ":12",
                    "host:x2"):
            with pytest.raises(ValueError):
                parse_host_port(bad)

    def test_connect_refused_fails_fast(self, tmp_path):
        with pytest.raises(ShardCrashedError, match="cannot reach"):
            NetShard("s0", "127.0.0.1", 1, connect_timeout=0.5,
                     replica_path=tmp_path / "r.journal")

    def test_bad_spec_start_leaves_remote_hosts_alive(self, tmp_path, rng):
        """Fail-fast construction severs sockets only: the surviving
        remote services belong to their hosts and must stay up."""
        host = _Host(tmp_path, "survivor")
        try:
            with pytest.raises(ShardCrashedError):
                ClusterService(
                    shards=2, shard_backend="net",
                    shard_specs=[host.spec, "127.0.0.1:1"],
                    journal_dir=tmp_path / "replicas",
                    net_options=dict(FAST_NET),
                )
            # The healthy host still answers a fresh router.
            with net_cluster(tmp_path, shards=1, hosts=[host]) as svc:
                assert svc.solve(random_fixed_problem(rng, 5, 5)).ok
        finally:
            host.close()


class TestJournalShipping:
    def test_replica_mirrors_remote_journal_bytes(self, tmp_path, rng):
        with net_cluster(tmp_path, shards=2) as svc:
            for _ in range(5):
                svc.submit(random_fixed_problem(rng, 6, 5))
            responses = svc.drain()
            assert len(responses) == 5 and all(r.ok for r in responses)
            router = svc.stats().router
            assert router["shipped_records"] == 10  # 5 requests + 5 responses
            hosts = svc._test_hosts
        # Byte-for-byte: shard-i's shipped replica equals remote-i's
        # local WAL (specs were passed in order).
        for i, host in enumerate(hosts):
            replica = tmp_path / "replicas" / f"shard-{i}.journal"
            assert replica.read_bytes() == host.journal_path.read_bytes()

    def test_fresh_replica_catches_up_on_connect(self, tmp_path, rng):
        host = _Host(tmp_path, "remote-a")
        try:
            first = NetShard("shard-0", *parse_host_port(host.spec),
                             replica_path=tmp_path / "r1.journal", fsync=1)
            rid = first.submit(SolveRequest(
                problem=random_fixed_problem(rng, 5, 5), id="cu-0"))
            (resp,) = first.call("drain")
            assert resp.ok and rid == "cu-0"
            first.kill()  # sever without touching the remote
            # A brand-new router with an empty replica: the hello
            # catch-up must ship the full WAL before commands flow.
            second = NetShard("shard-0", *parse_host_port(host.spec),
                              replica_path=tmp_path / "r2.journal", fsync=1)
            assert second.hello["journal_lines"] == 2
            assert (tmp_path / "r2.journal").read_bytes() == \
                host.journal_path.read_bytes()
            assert second.replica.answered("cu-0")
            second.close()
        finally:
            host.close()

    def test_reconnect_resumes_at_the_replica_cursor(self, tmp_path, rng):
        with net_cluster(tmp_path, shards=1) as svc:
            svc.solve(random_fixed_problem(rng, 5, 5))
            shard = svc._shards["shard-0"]
            before = shard.replica.lines
            shard._drop()  # connection lost, host alive
            hello = shard.reconnect()
            # Nothing re-shipped: the cursor already covered the WAL.
            assert shard.replica.lines == before == hello["journal_lines"]
            assert svc.solve(random_fixed_problem(rng, 6, 4)).ok

    def test_service_errors_cross_the_wire(self, tmp_path, rng):
        with net_cluster(tmp_path, shards=1) as svc:
            p = random_fixed_problem(rng, 5, 5)
            svc.submit(SolveRequest(problem=p, id="dup"))
            with pytest.raises(DuplicateRequestError):
                svc.submit(SolveRequest(problem=p, id="dup"))
            # The connection survives the error: the shard still works.
            assert len(svc.drain()) == 1


class TestProcessShardPing:
    def test_hung_child_is_killed_and_raises(self, tmp_path):
        """A child that is alive but unresponsive must not stay in the
        pipe: its late pong would desynchronize every later command.
        The regression: ping used to time out and leave it running."""
        shard = ProcessShard("s0", dict(SVC_KW),
                             journal_path=tmp_path / "s0.journal")
        try:
            os.kill(shard.pid, signal.SIGSTOP)  # wedge, don't kill
            assert shard._proc.is_alive()
            with pytest.raises(ShardCrashedError, match="unresponsive"):
                shard.ping(timeout=0.3)
            assert not shard._proc.is_alive()  # the probe reaped it
        finally:
            shard.close()

    def test_cluster_ping_respawns_hung_child(self, tmp_path, rng):
        with ClusterService(
            shards=2, shard_backend="process",
            journal_dir=tmp_path / "j", ping_timeout=0.5,
            **SVC_KW,
        ) as svc:
            rid = svc.submit(random_fixed_problem(rng, 5, 5))
            target = svc._pending[rid].shard
            os.kill(svc._shards[target].pid, signal.SIGSTOP)
            health = svc.ping()
            assert health[target] == "respawned"
            responses = svc.drain()
            assert [r.id for r in responses] == [rid] and responses[0].ok


class TestHostLossFailover:
    def test_failover_mid_traffic_is_exactly_once_bit_identical(
        self, tmp_path, rng
    ):
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(10)]
        # Baseline: the same stream through an undisturbed inline
        # cluster of the same shape (same ring; journaled so the
        # derived ids match the journaled net run).
        with tc.inline_cluster(
            shards=3, journal_dir=tmp_path / "baseline"
        ) as base:
            base_ids = [base.submit(p) for p in problems]
            baseline = {r.id: r for r in base.drain()}
        with net_cluster(tmp_path, shards=3) as svc:
            ids = [svc.submit(p) for p in problems]
            assert ids == base_ids
            victim_host = svc._test_hosts[0]
            # The host dies mid-traffic AND its disk is lost: recovery
            # can only come from the shipped replica.
            victim_host.die(lose_disk=True)
            responses = {r.id: r for r in svc.drain()}
            router = svc.stats().router
            health = svc.shard_health()
        assert sorted(responses) == sorted(ids)  # zero lost, zero doubled
        for rid in ids:
            np.testing.assert_array_equal(
                responses[rid].result.x, baseline[rid].result.x
            )
        assert router["failovers"] == 1
        assert router["failover_lost"] == 0
        assert health["shard-0"] == "failed-over"
        # The consumed replica is archived, not destroyed.
        archive = tmp_path / "replicas" / "failover-000" / "shard-0.journal"
        assert archive.exists()

    def test_answered_but_undelivered_comes_from_the_replica(
        self, tmp_path, rng
    ):
        """The narrowest window: the remote solved and journaled a
        response, shipping put it in the replica, but the host died
        before the router drained it.  Failover must deliver the
        recorded response verbatim — never re-solve it."""
        with net_cluster(tmp_path, shards=2) as svc:
            problems = [random_fixed_problem(rng, 6, 5) for _ in range(6)]
            ids = [svc.submit(p) for p in problems]
            on_zero = [rid for rid in ids
                       if svc._pending[rid].shard == "shard-0"]
            assert on_zero  # 6 draws always spread over 2 shards
            host = svc._test_hosts[0]
            # The remote answers internally (its own drain loop)...
            host.service.drain()
            # ...and the next router command ships the response records
            # into the replica before its reply (ship-before-reply).
            svc.ping()
            # Host loss before the router ever drains those responses.
            host.die(lose_disk=True)
            responses = {r.id: r for r in svc.drain()}
            router = svc.stats().router
        assert sorted(responses) == sorted(ids)
        assert router["failover_recovered"] == len(on_zero)
        assert router["failover_resubmitted"] == 0
        for rid, problem in zip(ids, problems):
            np.testing.assert_array_equal(
                responses[rid].result.x, solve(problem).x
            )

    def test_failover_without_survivors_raises(self, tmp_path, rng):
        with net_cluster(tmp_path, shards=1) as svc:
            svc.submit(random_fixed_problem(rng, 5, 5))
            svc._test_hosts[0].die()
            with pytest.raises(ShardCrashedError, match="no shards survive"):
                svc.drain()

    def test_failover_unreachable_probe(self, tmp_path, rng):
        with net_cluster(tmp_path, shards=2, ping_timeout=0.5) as svc:
            assert svc.failover_unreachable() == []
            svc._test_hosts[1].die()
            assert svc.failover_unreachable() == ["shard-1"]
            assert svc.shard_health()["shard-1"] == "failed-over"
            # The survivor still serves the whole keyspace.
            assert svc.solve(random_fixed_problem(rng, 5, 5)).ok

    def test_supervisor_escalates_unreachable_to_failover(
        self, tmp_path, rng
    ):
        """The dead-shard rule must pick FailoverShard (not a respawn,
        which cannot cross hosts) when a net replica is unreachable."""
        from repro.supervisor import Supervisor

        with net_cluster(tmp_path, shards=2, ping_timeout=0.5) as svc:
            svc._test_hosts[0].die()
            sup = Supervisor(svc, interval_s=0.1)
            # Tick 1 discovers: the stats probe fails, drops the
            # connection, and stays passive (no reconnect, no action).
            assert sup.tick() is None
            assert svc.shard_health()["shard-0"] == "unreachable"
            entry = sup.tick()  # dead-shard rule has sustain=1
            assert entry["phase"] == "apply"
            assert entry["action"] == "failover-shard"
            assert entry["params"]["failed_over"] == ["shard-0"]
            assert svc.shard_health()["shard-0"] == "failed-over"

    def test_prometheus_text_reports_failover_counters(self, tmp_path, rng):
        with net_cluster(tmp_path, shards=2) as svc:
            svc.solve(random_fixed_problem(rng, 5, 5))
            svc._test_hosts[0].die()
            svc.failover_unreachable()
            text = svc.stats().metrics_text()
        assert "repro_cluster_failovers_total 1" in text
        assert "repro_cluster_failover_lost_total 0" in text
        assert re.search(r'repro_shard_up\{shard="shard-0"\} 0', text)
        assert re.search(r'repro_shard_up\{shard="shard-1"\} 1', text)
        assert re.search(
            r'repro_shard_requests_total\{shard="shard-1"\} \d+', text
        )


class _ProxyThread:
    """A ChaosProxy on its own asyncio loop in a daemon thread."""

    def __init__(self, upstream: str, schedule: ChaosSchedule):
        host, port = parse_host_port(upstream)
        self.proxy = ChaosProxy(host, port, schedule)
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "chaos proxy failed to start"

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        async with self.proxy:
            self._ready.set()
            await self._stop.wait()

    @property
    def spec(self) -> str:
        return f"127.0.0.1:{self.proxy.port}"

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(timeout=10)


def _spawn_shard_serve(tmp_path, name):
    """A real shard-serve subprocess (the SIGKILL target)."""
    journal_dir = pathlib.Path(tmp_path) / f"{name}-disk"
    journal_dir.mkdir(parents=True, exist_ok=True)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-serve",
         "--tcp", "127.0.0.1:0", "--shard-id", name,
         "--journal", str(journal_dir / "local.journal"), "--fsync", "1",
         "--no-warm-start", "--no-batch"],
        env=dict(os.environ,
                 PYTHONPATH=str(pathlib.Path(__file__).parent.parent / "src")),
        stderr=subprocess.PIPE, text=True,
    )
    line = proc.stderr.readline()
    match = re.search(r"shard listening on ([\d.]+:\d+)", line)
    assert match, f"{name} never announced: {line!r}"
    return proc, match.group(1), journal_dir


class TestNetChaosMatrix:
    """The acceptance soak: real subprocess hosts behind chaos proxies,
    a timed partition, a SIGKILL with disk loss — and exactly-once,
    bit-identical answers at the end of it."""

    def test_partition_sigkill_disk_loss_exactly_once(self, tmp_path, rng):
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(12)]
        with tc.inline_cluster(
            shards=2, journal_dir=tmp_path / "baseline"
        ) as base:
            base_ids = [base.submit(p) for p in problems]
            baseline = {r.id: r for r in base.drain()}

        proc0, addr0, disk0 = _spawn_shard_serve(tmp_path, "host-0")
        proc1, addr1, disk1 = _spawn_shard_serve(tmp_path, "host-1")
        # host-0's proxy: clean relay (the fault there is the SIGKILL).
        # host-1's proxy: a timed full partition mid-traffic; the
        # router must ride it out with reconnect backoff, not failover.
        proxy0 = _ProxyThread(addr0, ChaosSchedule(seed=11))
        proxy1 = _ProxyThread(
            addr1, ChaosSchedule(seed=13, partitions=((0.4, 0.9),))
        )
        svc = None
        try:
            svc = ClusterService(
                shards=2, shard_backend="net",
                shard_specs=[proxy0.spec, proxy1.spec],
                journal_dir=tmp_path / "replicas", fsync=1,
                net_options=dict(connect_timeout=2.0, max_reconnects=8,
                                 backoff_base=0.05, backoff_max=0.3,
                                 seed=7),
            )
            ids = []
            for i, problem in enumerate(problems):
                if i == 6:
                    # Host loss mid-traffic: SIGKILL, then the whole
                    # disk goes — recovery must come from the shipped
                    # replica alone.
                    proc0.kill()
                    proc0.wait(timeout=10)
                    shutil.rmtree(disk0)
                ids.append(svc.submit(problem))
                time.sleep(0.08)  # stretch traffic across the partition
            assert ids == base_ids
            answered: dict = {}
            deadline = time.monotonic() + 60
            while len(answered) < len(ids) and time.monotonic() < deadline:
                for resp in svc.collect() + svc.drain():
                    assert resp.id not in answered, "double answer"
                    answered[resp.id] = resp
            router = svc.stats().router
            health = svc.shard_health()
        finally:
            for proxy, name in ((proxy0, "host-0"), (proxy1, "host-1")):
                proxy.proxy.write_events(
                    tmp_path / f"chaos-events-{name}.jsonl"
                )
                proxy.stop()
            if svc is not None:
                svc.close()
            for proc in (proc0, proc1):
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=10)

        assert sorted(answered) == sorted(ids)  # zero lost, zero doubled
        for rid in ids:
            np.testing.assert_array_equal(
                answered[rid].result.x, baseline[rid].result.x
            )
        assert router["failovers"] == 1 and router["failover_lost"] == 0
        assert health["shard-0"] == "failed-over"
        assert health["shard-1"] == "ok"  # partition ≠ host loss
        archive = tmp_path / "replicas" / "failover-000" / "shard-0.journal"
        assert archive.exists()
