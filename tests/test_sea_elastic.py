"""SEA elastic solver (unknown row and column totals)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_elastic_problem
from repro.core.convergence import StoppingRule
from repro.core.dual import grad_zeta_elastic, zeta_elastic
from repro.core.kkt import kkt_violations
from repro.core.problems import ElasticProblem, FixedTotalsProblem
from repro.core.sea import solve_elastic, solve_fixed

TIGHT = StoppingRule(eps=1e-9, criterion="delta-x", max_iterations=20_000)


class TestOptimality:
    def test_kkt_conditions_hold(self, rng):
        problem = random_elastic_problem(rng, 7, 9)
        result = solve_elastic(problem, stop=TIGHT)
        assert result.converged
        v = kkt_violations(
            problem, result.x, result.lam, result.mu, s=result.s, d=result.d
        )
        scale = float(problem.s0.max())
        assert max(v.values()) < 1e-5 * scale

    def test_totals_recovered_from_multipliers(self, rng):
        """(23b)-(23c): s = s0 - lam/(2 alpha), d = d0 - mu/(2 beta)."""
        problem = random_elastic_problem(rng, 5, 6)
        result = solve_elastic(problem, stop=TIGHT)
        np.testing.assert_allclose(
            result.s, problem.s0 - result.lam / (2 * problem.alpha), rtol=1e-10
        )
        np.testing.assert_allclose(
            result.d, problem.d0 - result.mu / (2 * problem.beta), rtol=1e-10
        )

    def test_grand_total_consistency(self, rng):
        """sum(s) == sum(d) == total flow at the solution."""
        problem = random_elastic_problem(rng, 6, 4)
        result = solve_elastic(problem, stop=TIGHT)
        total = result.x.sum()
        assert result.s.sum() == pytest.approx(total, rel=1e-6)
        assert result.d.sum() == pytest.approx(total, rel=1e-6)

    def test_objective_not_worse_than_feasible_candidates(self, rng):
        """The optimum beats scaling-based feasible alternatives."""
        problem = random_elastic_problem(rng, 5, 5)
        result = solve_elastic(problem, stop=TIGHT)
        for factor in (0.8, 1.0, 1.25):
            x = np.maximum(problem.x0, 0.0) * factor
            cand = problem.objective(x, x.sum(axis=1), x.sum(axis=0))
            assert result.objective <= cand + 1e-6 * max(cand, 1.0)


class TestLimitBehaviour:
    def test_large_alpha_beta_approaches_fixed_solution(self, rng):
        """As alpha, beta -> inf the elastic model pins the totals, so its
        solution approaches the fixed-totals solution."""
        x0 = rng.uniform(1.0, 20.0, (5, 5))
        gamma = rng.uniform(0.5, 2.0, (5, 5))
        s0 = x0.sum(axis=1) * rng.uniform(0.8, 1.2, 5)
        d0 = x0.sum(axis=0) * rng.uniform(0.8, 1.2, 5)
        d0 *= s0.sum() / d0.sum()
        fixed = FixedTotalsProblem(x0=x0, gamma=gamma, s0=s0, d0=d0)
        fixed_result = solve_fixed(fixed, stop=TIGHT)
        big = 1e7
        elastic = ElasticProblem(
            x0=x0, gamma=gamma, s0=s0, d0=d0,
            alpha=np.full(5, big), beta=np.full(5, big),
        )
        elastic_result = solve_elastic(elastic, stop=TIGHT)
        np.testing.assert_allclose(elastic_result.s, s0, rtol=1e-4)
        np.testing.assert_allclose(
            elastic_result.x, fixed_result.x, atol=1e-3 * x0.max()
        )

    def test_balanced_base_is_fixed_point(self):
        """If x0 is feasible with s = s0, d = d0 exactly, nothing moves."""
        x0 = np.array([[3.0, 1.0], [2.0, 4.0]])
        problem = ElasticProblem(
            x0=x0, gamma=np.ones((2, 2)),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
            alpha=np.ones(2), beta=np.ones(2),
        )
        result = solve_elastic(problem, stop=TIGHT)
        np.testing.assert_allclose(result.x, x0, atol=1e-8)
        np.testing.assert_allclose(result.s, problem.s0, atol=1e-8)


class TestDualAscent:
    def test_zeta1_monotone(self, rng):
        problem = random_elastic_problem(rng, 6, 7)
        from repro.equilibration.exact import solve_piecewise_linear

        mask = problem.mask
        gamma_safe = np.where(mask, problem.gamma, 1.0)
        base = np.where(mask, -2.0 * gamma_safe * problem.x0, 0.0)
        slopes = np.where(mask, 1.0 / (2.0 * gamma_safe), 0.0)
        a_row = 1.0 / (2.0 * problem.alpha)
        a_col = 1.0 / (2.0 * problem.beta)
        mu = np.zeros(problem.shape[1])
        values = []
        for _ in range(15):
            lam = solve_piecewise_linear(
                base - mu[None, :], slopes, np.zeros(problem.shape[0]),
                a=a_row, c=-problem.s0,
            )
            values.append(zeta_elastic(problem, lam, mu))
            mu = solve_piecewise_linear(
                base.T - lam[None, :], slopes.T.copy(), np.zeros(problem.shape[1]),
                a=a_col, c=-problem.d0,
            )
            values.append(zeta_elastic(problem, lam, mu))
        diffs = np.diff(values)
        assert np.all(diffs > -1e-6 * max(abs(values[0]), 1.0))

    def test_gradient_vanishes_at_convergence(self, rng):
        problem = random_elastic_problem(rng, 6, 6)
        result = solve_elastic(problem, stop=TIGHT)
        g_lam, g_mu = grad_zeta_elastic(problem, result.lam, result.mu)
        scale = float(problem.s0.max())
        assert np.max(np.abs(g_lam)) < 1e-5 * scale
        assert np.max(np.abs(g_mu)) < 1e-5 * scale


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), m=st.integers(2, 8), n=st.integers(2, 8))
def test_elastic_solution_properties(seed, m, n):
    rng = np.random.default_rng(seed)
    problem = random_elastic_problem(rng, m, n)
    result = solve_elastic(problem, stop=TIGHT)
    assert result.converged
    assert np.all(result.x >= 0)
    scale = float(problem.s0.max()) + 1.0
    # Column constraints exact (column phase ran last); row near-exact.
    assert np.max(np.abs(result.x.sum(axis=0) - result.d)) < 1e-8 * scale
    v = kkt_violations(
        problem, result.x, result.lam, result.mu, s=result.s, d=result.d
    )
    assert max(v.values()) < 2e-5 * scale
