"""Property-based invariants of the solver family (hypothesis).

These encode the mathematical structure the paper proves:

* scaling invariance of the optimizer (objective scaling does not move
  the solution; data scaling moves it linearly),
* permutation equivariance (rows/columns carry no hidden order),
* projection identity (a feasible base is its own estimate),
* monotone dual ascent and primal feasibility at every exit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.problems import FixedTotalsProblem
from repro.core.sea import solve_fixed

TIGHT = StoppingRule(eps=1e-9, max_iterations=5000)

seeds = st.integers(0, 100_000)


@settings(max_examples=25, deadline=None)
@given(seed=seeds, scale=st.floats(0.1, 100.0))
def test_objective_scaling_invariance(seed, scale):
    """Multiplying every weight by a constant leaves the optimizer fixed."""
    rng = np.random.default_rng(seed)
    p1 = random_fixed_problem(rng, 5, 5, total_factor_low=0.4)
    p2 = FixedTotalsProblem(
        x0=p1.x0, gamma=p1.gamma * scale, s0=p1.s0, d0=p1.d0, mask=p1.mask
    )
    r1 = solve_fixed(p1, stop=TIGHT)
    r2 = solve_fixed(p2, stop=TIGHT)
    np.testing.assert_allclose(r1.x, r2.x, atol=1e-6 * p1.s0.max())


@settings(max_examples=25, deadline=None)
@given(seed=seeds, scale=st.floats(0.1, 50.0))
def test_data_scaling_equivariance(seed, scale):
    """Scaling x0 and the totals by c scales the solution by c (the
    objective is a squared norm: homogeneous of degree 2)."""
    rng = np.random.default_rng(seed)
    p1 = random_fixed_problem(rng, 4, 6, total_factor_low=0.4)
    p2 = FixedTotalsProblem(
        x0=p1.x0 * scale, gamma=p1.gamma,
        s0=p1.s0 * scale, d0=p1.d0 * scale, mask=p1.mask,
    )
    r1 = solve_fixed(p1, stop=TIGHT)
    r2 = solve_fixed(p2, stop=TIGHT)
    np.testing.assert_allclose(
        r2.x, r1.x * scale, atol=1e-6 * scale * p1.s0.max()
    )


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_permutation_equivariance(seed):
    """Permuting rows and columns permutes the solution identically."""
    rng = np.random.default_rng(seed)
    p = random_fixed_problem(rng, 5, 6, total_factor_low=0.4)
    pr = rng.permutation(5)
    pc = rng.permutation(6)
    permuted = FixedTotalsProblem(
        x0=p.x0[np.ix_(pr, pc)], gamma=p.gamma[np.ix_(pr, pc)],
        s0=p.s0[pr], d0=p.d0[pc], mask=p.mask[np.ix_(pr, pc)],
    )
    r = solve_fixed(p, stop=TIGHT)
    rp = solve_fixed(permuted, stop=TIGHT)
    np.testing.assert_allclose(
        rp.x, r.x[np.ix_(pr, pc)], atol=1e-6 * p.s0.max()
    )


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_feasible_base_is_projection_fixed_point(seed):
    """If x0 already satisfies the constraints, the estimate is x0."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.5, 20.0, (4, 5))
    p = FixedTotalsProblem(
        x0=x0, gamma=rng.uniform(0.5, 5.0, (4, 5)),
        s0=x0.sum(axis=1), d0=x0.sum(axis=0),
    )
    r = solve_fixed(p, stop=TIGHT)
    np.testing.assert_allclose(r.x, x0, atol=1e-8 * x0.max())
    assert r.objective < 1e-10 * (x0.max() ** 2)


@settings(max_examples=25, deadline=None)
@given(seed=seeds, shrink=st.floats(0.1, 0.9))
def test_objective_monotone_in_constraint_distance(seed, shrink):
    """Pulling the targets toward feasibility of x0 can only decrease
    the optimal objective (the feasible set moves toward x0)."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.5, 20.0, (5, 5))
    gamma = rng.uniform(0.5, 5.0, (5, 5))
    s_base, d_base = x0.sum(axis=1), x0.sum(axis=0)
    delta_s = rng.uniform(-0.4, 0.4, 5) * s_base
    delta_d = rng.uniform(-0.4, 0.4, 5) * d_base
    delta_d += (delta_s.sum() - delta_d.sum()) / 5  # keep balance

    def solve_with(t):
        p = FixedTotalsProblem(
            x0=x0, gamma=gamma, s0=s_base + t * delta_s, d0=d_base + t * delta_d
        )
        return solve_fixed(p, stop=TIGHT).objective

    far = solve_with(1.0)
    near = solve_with(shrink)
    assert near <= far * (1 + 1e-7) + 1e-9
