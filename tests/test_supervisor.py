"""The self-healing supervisor: detect → propose → apply → verify → revert.

Driven tick-by-tick against a deterministic fake service (backed by the
real :class:`ServiceStats` record, so signal extraction runs the real
code path).  The load-bearing guarantees:

* a detector must stay hot for ``sustain`` consecutive ticks — one
  noisy sample never triggers an action;
* at most one action is in flight; detection is suspended while a
  verification window is open;
* an action whose verification window shows no improvement is
  REVERTED and the original configuration restored (the acceptance
  criterion of the robustness issue);
* ``PauseIntake`` auto-expires at the end of its window regardless of
  outcome — pausing is a circuit breaker, not a steady state;
* every decision lands in the structured action journal (and on disk
  when a path is given).

An integration block runs the corrective actions against a *real*
``SolveService`` / inline ``ClusterService`` to pin the service-side
hooks (``pause_intake``, ``set_admission_policy``, ``shard_health``).
"""

import json

import pytest

from conftest import random_fixed_problem
from repro.cluster import ClusterService
from repro.errors import OverloadedError
from repro.service import SolveService
from repro.service.metrics import ServiceStats
from repro.service.request import SolveRequest
from repro.supervisor import (
    ActionJournal,
    FlipAdmissionPolicy,
    PauseIntake,
    RespawnShards,
    ScaleWindow,
    Rule,
    Supervisor,
)
from repro.supervisor.actions import SupervisorTarget


class FakeService:
    """Deterministic stand-in exposing the supervisor-facing surface."""

    def __init__(self) -> None:
        self.stats_obj = ServiceStats()
        self.max_batch = 8
        self.policy = "reject-newest"
        self.paused = False
        self.pings = 0
        self.health: dict = {}

    def stats(self) -> ServiceStats:
        return self.stats_obj.snapshot()

    def shard_health(self) -> dict:
        return dict(self.health)

    def ping(self) -> dict:
        self.pings += 1
        before = dict(self.health)
        self.health = {sid: "ok" for sid in self.health}
        return before

    @property
    def admission_policy(self) -> str:
        return self.policy

    def set_admission_policy(self, policy: str) -> str:
        old, self.policy = self.policy, policy
        return old

    def pause_intake(self) -> None:
        self.paused = True

    def resume_intake(self) -> None:
        self.paused = False


def make_supervisor(svc, **kw) -> Supervisor:
    kw.setdefault("verify_ticks", 2)
    kw.setdefault("sustain_ticks", 2)
    kw.setdefault("cooldown_ticks", 3)
    kw.setdefault("queue_high", 10.0)
    return Supervisor(svc, **kw)


class TestDetection:
    def test_one_noisy_sample_never_triggers(self):
        svc = FakeService()
        sup = make_supervisor(svc)
        svc.stats_obj.queue_depth = 50
        assert sup.tick() is None          # hot = 1 < sustain
        svc.stats_obj.queue_depth = 0
        assert sup.tick() is None          # cooled: hot resets
        svc.stats_obj.queue_depth = 50
        assert sup.tick() is None          # hot = 1 again
        assert svc.max_batch == 8          # nothing ever applied

    def test_sustained_queue_depth_widens_the_window(self):
        svc = FakeService()
        sup = make_supervisor(svc)
        svc.stats_obj.queue_depth = 50
        assert sup.tick() is None
        entry = sup.tick()
        assert entry["phase"] == "apply"
        assert entry["detector"] == "queue-depth"
        assert entry["action"] == "widen-batch-window"
        assert entry["params"] == {"from": 8, "to": 16}
        assert svc.max_batch == 16
        assert sup.verifying

    def test_miss_rate_is_a_delta_not_a_lifetime_ratio(self):
        svc = FakeService()
        sup = make_supervisor(svc)
        sup.tick()  # baseline poll
        # 10% of the NEW requests missed their deadline on each of two
        # consecutive polls: sustained, so the window narrows.
        for _ in range(2):
            svc.stats_obj.requests += 100
            svc.stats_obj.deadline_exceeded += 10
            entry = sup.tick()
        assert entry["phase"] == "apply"
        assert entry["detector"] == "deadline-miss"
        assert entry["action"] == "narrow-batch-window"
        assert svc.max_batch == 4
        # A long-dead burst does NOT keep the detector hot: no new
        # misses means miss_rate 0 even though lifetime totals are high.
        sup2 = make_supervisor(FakeService())
        probe = sup2.probe()
        assert probe["miss_rate"] == 0.0

    def test_one_action_in_flight_suspends_other_detectors(self):
        svc = FakeService()
        sup = make_supervisor(svc)
        svc.stats_obj.queue_depth = 50
        sup.tick()
        sup.tick()  # queue-depth action applied
        # A shed storm starts mid-verification: nothing new applies.
        svc.stats_obj.overload_sheds += 100
        out = sup.tick()
        assert out is None and sup.verifying
        applies = [e for e in sup.journal.entries if e["phase"] == "apply"]
        assert len(applies) == 1


class TestVerifyAndRevert:
    def test_improvement_keeps_the_action(self):
        svc = FakeService()
        sup = make_supervisor(svc)
        svc.stats_obj.queue_depth = 50
        sup.tick(); sup.tick()             # applied: window 8 -> 16
        svc.stats_obj.queue_depth = 2      # back under the threshold
        assert sup.tick() is None          # verify sample 1/2
        entry = sup.tick()                 # verdict
        assert entry["phase"] == "verify"
        assert entry["outcome"] == "kept"
        assert svc.max_batch == 16         # the action stands
        assert not sup.verifying

    def test_no_improvement_reverts_and_restores_state(self):
        """THE acceptance-criterion scenario: the verification window
        shows no improvement, so the supervisor reverts the action and
        the journal records it."""
        svc = FakeService()
        sup = make_supervisor(svc)
        svc.stats_obj.queue_depth = 50
        sup.tick(); sup.tick()
        assert svc.max_batch == 16
        # The queue stays exactly as bad through the whole window.
        sup.tick()
        entry = sup.tick()
        assert entry["phase"] == "verify"
        assert entry["outcome"] == "reverted"
        assert entry["baseline"] == 50
        assert entry["observed"] == 50
        assert svc.max_batch == 8          # original config restored
        # The rule is cooling down: the still-bad signal cannot
        # immediately re-trigger the same action.
        assert sup.tick() is None
        assert svc.max_batch == 8

    def test_partial_improvement_below_min_improvement_reverts(self):
        svc = FakeService()
        sup = make_supervisor(svc, min_improvement=0.1)
        svc.stats_obj.queue_depth = 50
        sup.tick(); sup.tick()
        svc.stats_obj.queue_depth = 48     # 4% better: not enough
        sup.tick()
        entry = sup.tick()
        assert entry["outcome"] == "reverted"
        assert svc.max_batch == 8

    def test_pause_intake_auto_expires_even_when_it_helped(self):
        svc = FakeService()
        svc.max_batch = 256                # window already at the cap
        sup = make_supervisor(svc)
        svc.stats_obj.queue_depth = 500
        sup.tick()
        entry = sup.tick()
        assert entry["action"] == "pause-intake"
        assert svc.paused
        svc.stats_obj.queue_depth = 1      # the pause worked
        sup.tick()
        entry = sup.tick()
        assert entry["outcome"] == "kept"
        assert entry["expired"] is True
        assert not svc.paused              # expired regardless of outcome

    def test_dead_shard_triggers_respawn_via_ping(self):
        svc = FakeService()
        svc.health = {"s0": "dead", "s1": "ok"}
        sup = make_supervisor(svc)
        entry = sup.tick()                 # sustain=1: fires immediately
        assert entry["phase"] == "apply"
        assert entry["detector"] == "dead-shard"
        assert entry["action"] == "respawn-shards"
        assert entry["params"] == {"respawned": ["s0"]}
        assert svc.pings == 1
        sup.tick()
        entry = sup.tick()
        assert entry["outcome"] == "kept"  # ping healed the shard


class TestEscalation:
    def test_overload_ladder_escalates_one_rung_per_episode(self):
        svc = FakeService()
        sup = make_supervisor(svc, window_max=16, cooldown_ticks=0)
        svc.stats_obj.queue_depth = 50     # never improves

        def run_episode():
            entries = [sup.tick() for _ in range(4)]
            return [e for e in entries if e is not None]

        first = run_episode()
        assert first[0]["action"] == "widen-batch-window"
        assert first[-1]["outcome"] == "reverted"
        svc.max_batch = 16                 # at the cap now
        svc.policy = "block"
        second = run_episode()
        assert second[0]["action"] == "flip-admission"
        assert second[0]["params"] == {"from": "block", "to": "shed-oldest"}
        assert second[-1]["outcome"] == "reverted"
        assert svc.policy == "block"       # restored on revert
        # Once shedding is already in force (as if the flip had been
        # kept), the only rung left is the intake breaker.
        svc.policy = "shed-oldest"
        third = run_episode()
        assert third[0]["action"] == "pause-intake"

    def test_shed_rate_flips_shed_oldest_back_to_block(self):
        svc = FakeService()
        svc.policy = "shed-oldest"
        sup = make_supervisor(svc)
        sup.tick()
        for _ in range(2):
            svc.stats_obj.overload_sheds += 5
            entry = sup.tick()
        assert entry["detector"] == "shed-rate"
        assert entry["action"] == "flip-admission"
        assert svc.policy == "block"


class TestJournal:
    def test_decisions_land_on_disk_as_jsonl(self, tmp_path):
        path = tmp_path / "actions.jsonl"
        svc = FakeService()
        sup = make_supervisor(svc, journal=path)
        svc.stats_obj.queue_depth = 50
        for _ in range(4):
            sup.tick()
        sup.journal.close()
        lines = path.read_text().splitlines()
        entries = [json.loads(l) for l in lines]
        assert [e["phase"] for e in entries] == ["apply", "verify"]
        assert entries[1]["outcome"] == "reverted"
        assert all("ts" in e and "tick" in e for e in entries)

    def test_action_journal_is_append_only_across_instances(self, tmp_path):
        path = tmp_path / "actions.jsonl"
        with ActionJournal(path) as journal:
            journal.log(phase="apply", action="x")
        with ActionJournal(path) as journal:
            journal.log(phase="verify", action="x", outcome="kept")
        entries = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["phase"] for e in entries] == ["apply", "verify"]


class TestActions:
    def test_scale_window_always_moves_inside_the_clamp(self):
        svc = FakeService()
        target = SupervisorTarget(svc)
        svc.max_batch = 1
        up = ScaleWindow(1.2, lo=1, hi=4)  # round(1*1.2) == 1: forced +1
        assert up.apply(target) == {"from": 1, "to": 2}
        up.revert(target)
        assert svc.max_batch == 1
        down = ScaleWindow(0.9, lo=1, hi=4)
        svc.max_batch = 4
        assert down.apply(target) == {"from": 4, "to": 3}

    def test_flip_admission_revert_restores_the_old_policy(self):
        svc = FakeService()
        target = SupervisorTarget(svc)
        flip = FlipAdmissionPolicy("shed-oldest")
        assert flip.apply(target) == {
            "from": "reject-newest", "to": "shed-oldest"
        }
        flip.revert(target)
        assert svc.policy == "reject-newest"

    def test_respawn_is_not_reversible_pause_auto_expires(self):
        assert RespawnShards.reversible is False
        assert PauseIntake.auto_expires is True


class TestServiceIntegration:
    def test_pause_intake_rejects_submissions_on_a_real_service(self, rng):
        with SolveService() as svc:
            svc.pause_intake()
            assert svc.intake_paused
            with pytest.raises(OverloadedError, match="paused"):
                svc.submit(SolveRequest(
                    problem=random_fixed_problem(rng, 3, 3), id="p1"
                ))
            svc.resume_intake()
            assert not svc.intake_paused
            rid = svc.submit(SolveRequest(
                problem=random_fixed_problem(rng, 3, 3), id="p1"
            ))
            responses = svc.drain()
            assert [r.id for r in responses] == [rid]

    def test_set_admission_policy_swaps_live(self, rng):
        with SolveService(max_queue=4) as svc:
            assert svc.admission_policy == "reject-newest"
            old = svc.set_admission_policy("shed-oldest")
            assert old == "reject-newest"
            assert svc.admission_policy == "shed-oldest"
            with pytest.raises(ValueError, match="unknown"):
                svc.set_admission_policy("drop-everything")

    def test_cluster_shard_health_and_router_health_block(self, rng):
        with ClusterService(shards=2, shard_backend="inline") as cluster:
            health = cluster.shard_health()
            assert set(health.values()) <= {"ok", "degraded-inline"}
            assert len(health) == 2
            stats = cluster.stats()
            router = stats.as_dict()["cluster"]["router"]
            assert router["health"] == health
            text = stats.metrics_text()
            assert "repro_shard_up{" in text
            assert "repro_cluster_shards" in text

    def test_supervisor_against_a_real_cluster_respawns(self):
        with ClusterService(shards=2, shard_backend="inline") as cluster:
            sup = Supervisor(cluster, verify_ticks=1)
            # Inline shards are always alive, so no action fires — but
            # the full probe path (shard_health before stats) runs.
            assert sup.tick() is None
            probe = sup.probe()
            assert probe["dead_shards"] == 0


class TestCustomRules:
    def test_rules_override_replaces_the_default_set(self):
        svc = FakeService()
        fired = []

        def propose(sup):
            fired.append(sup)
            return None

        rule = Rule("custom", lambda s: s["queue_depth"], 1.0, propose,
                    sustain=1, cooldown=0)
        sup = make_supervisor(svc, rules=[rule])
        svc.stats_obj.queue_depth = 5
        assert sup.tick() is None          # propose returned None
        assert fired == [sup]
