"""Harness: every experiment runs, renders, and satisfies its shape checks.

These are the library's integration tests for the paper's evaluation:
scaled-down instances, but the same code paths the full-scale benches
use.  The heavyweight experiments (tables 7-9) run at reduced sizes
here and at paper sizes in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.harness import EXPERIMENTS, PAPER_TABLES, run_experiment
from repro.harness.report import ExperimentResult, render_table


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert lines[3].endswith("-")

    def test_render_empty(self):
        assert render_table(["x"], []) == "x"

    def test_experiment_result_render(self):
        r = ExperimentResult(
            experiment="t", caption="c", columns=["x"], rows=[[1]],
            shape_checks={"ok check": True, "bad check": False},
            notes=["a note"],
        )
        out = r.render()
        assert "[ok] ok check" in out
        assert "[FAIL] bad check" in out
        assert "note: a note" in out
        assert not r.all_shapes_hold


class TestReference:
    def test_all_nine_tables_embedded(self):
        assert set(PAPER_TABLES) == {f"table{i}" for i in range(1, 10)}

    def test_table7_bk_missing_for_large(self):
        rows = PAPER_TABLES["table7"]["rows"]
        assert rows[2500][3] is None
        assert rows[900][3] is not None


class TestExperiments:
    def test_registry_contains_all_tables_and_figures(self):
        expected = {f"table{i}" for i in range(1, 10)} | {"figure5", "figure7"}
        assert expected == set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table10")

    def test_table1_scaled(self):
        r = run_experiment("table1", sizes=(40, 80, 120))
        assert r.shape_checks["all instances converged"]
        # Wall-clock monotonicity is asserted at bench scale, not here —
        # sub-millisecond solves are too noisy.
        assert len(r.rows) == 3

    def test_table3_shapes(self):
        r = run_experiment("table3")
        assert r.all_shapes_hold, r.render()

    def test_table4_shapes(self):
        r = run_experiment("table4")
        assert r.all_shapes_hold, r.render()

    def test_table5_scaled(self):
        r = run_experiment("table5", sizes=(30, 60))
        assert r.shape_checks["all instances converged"]

    def test_table7_scaled(self):
        r = run_experiment("table7", sides=(10, 20, 30), bk_max_side=20,
                           repeats=3)
        assert r.shape_checks["SEA beats RC on every instance"], r.render()
        assert r.shape_checks["B-K is slower than SEA by an order of magnitude or more"], r.render()
        assert r.shape_checks["B-K becomes prohibitive (not run) on large instances"]

    def test_figure5_aliases_table6(self):
        assert EXPERIMENTS["figure5"] is EXPERIMENTS["table6"]
        assert EXPERIMENTS["figure7"] is EXPERIMENTS["table9"]


@pytest.mark.slow
class TestHeavyExperiments:
    def test_table2_shapes(self):
        r = run_experiment("table2", replicates_c=1)
        assert r.all_shapes_hold, r.render()

    def test_table6_shapes(self):
        r = run_experiment("table6")
        assert r.all_shapes_hold, r.render()

    def test_table8_shapes(self):
        r = run_experiment("table8")
        assert r.all_shapes_hold, r.render()

    def test_table9_shapes(self):
        r = run_experiment("table9")
        assert r.all_shapes_hold, r.render()
        # Calibration: model within 10% of the paper's four numbers.
        ref = PAPER_TABLES["table9"]["rows"]
        for row in r.rows:
            algo, N, s_n = row[0], row[1], row[2]
            assert s_n == pytest.approx(ref[algo][N][0], rel=0.10)
