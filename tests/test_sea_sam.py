"""SEA SAM solver (balanced, estimated totals)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_sam_problem
from repro.core.convergence import StoppingRule
from repro.core.dual import grad_zeta_sam, zeta_sam
from repro.core.kkt import kkt_violations
from repro.core.problems import SAMProblem
from repro.core.sea import solve_sam

TIGHT = StoppingRule(eps=1e-10, criterion="imbalance", max_iterations=20_000)


class TestBalance:
    def test_accounts_balance(self, rng):
        """The defining SAM property: receipts == expenditures per account."""
        problem = random_sam_problem(rng, 7)
        result = solve_sam(problem, stop=TIGHT)
        assert result.converged
        np.testing.assert_allclose(
            result.x.sum(axis=1), result.x.sum(axis=0), rtol=1e-8
        )
        np.testing.assert_allclose(result.x.sum(axis=0), result.s, rtol=1e-8)

    def test_totals_recovered_from_multipliers(self, rng):
        """(40b): s_i = s0_i - (lam_i + mu_i) / (2 alpha_i)."""
        problem = random_sam_problem(rng, 6)
        result = solve_sam(problem, stop=TIGHT)
        np.testing.assert_allclose(
            result.s,
            problem.s0 - (result.lam + result.mu) / (2 * problem.alpha),
            rtol=1e-10,
        )

    def test_d_equals_s(self, rng):
        problem = random_sam_problem(rng, 5)
        result = solve_sam(problem, stop=TIGHT)
        np.testing.assert_array_equal(result.s, result.d)


class TestOptimality:
    def test_kkt_conditions_hold(self, rng):
        problem = random_sam_problem(rng, 8)
        result = solve_sam(problem, stop=TIGHT)
        v = kkt_violations(
            problem, result.x, result.lam, result.mu, s=result.s
        )
        scale = float(problem.s0.max())
        assert max(v.values()) < 1e-5 * scale

    def test_balanced_base_is_fixed_point(self):
        """A balanced base table with matching s0 does not move."""
        x0 = np.array([[0.0, 2.0], [2.0, 0.0]])
        problem = SAMProblem(
            x0=x0, gamma=np.ones((2, 2)), s0=np.array([2.0, 2.0]),
            alpha=np.ones(2), mask=x0 > 0,
        )
        result = solve_sam(problem, stop=TIGHT)
        np.testing.assert_allclose(result.x, x0, atol=1e-9)

    def test_structural_zeros_respected(self, rng):
        n = 6
        x0 = rng.uniform(1.0, 20.0, (n, n))
        mask = rng.random((n, n)) < 0.6
        np.fill_diagonal(mask, False)
        mask[np.arange(n), (np.arange(n) + 1) % n] = True  # keep connected
        mask[(np.arange(n) + 1) % n, np.arange(n)] = True
        problem = SAMProblem(
            x0=np.where(mask, x0, 0.0), gamma=np.ones((n, n)),
            s0=np.where(mask, x0, 0.0).sum(axis=1), alpha=np.ones(n), mask=mask,
        )
        result = solve_sam(problem, stop=TIGHT)
        assert np.all(result.x[~mask] == 0.0)
        assert result.converged


class TestDualAscent:
    def test_zeta2_monotone(self, rng):
        problem = random_sam_problem(rng, 6)
        from repro.equilibration.exact import solve_piecewise_linear

        n = problem.n
        mask = problem.mask
        gamma_safe = np.where(mask, problem.gamma, 1.0)
        base = np.where(mask, -2.0 * gamma_safe * problem.x0, 0.0)
        slopes = np.where(mask, 1.0 / (2.0 * gamma_safe), 0.0)
        a_el = 1.0 / (2.0 * problem.alpha)
        mu = np.zeros(n)
        values = []
        for _ in range(15):
            lam = solve_piecewise_linear(
                base - mu[None, :], slopes, np.zeros(n),
                a=a_el, c=mu * a_el - problem.s0,
            )
            values.append(zeta_sam(problem, lam, mu))
            mu = solve_piecewise_linear(
                base.T - lam[None, :], slopes.T.copy(), np.zeros(n),
                a=a_el, c=lam * a_el - problem.s0,
            )
            values.append(zeta_sam(problem, lam, mu))
        diffs = np.diff(values)
        assert np.all(diffs > -1e-6 * max(abs(values[0]), 1.0))

    def test_gradient_vanishes_at_convergence(self, rng):
        problem = random_sam_problem(rng, 7)
        result = solve_sam(problem, stop=TIGHT)
        g_lam, g_mu = grad_zeta_sam(problem, result.lam, result.mu)
        scale = float(problem.s0.max())
        assert np.max(np.abs(g_lam)) < 1e-6 * scale
        assert np.max(np.abs(g_mu)) < 1e-6 * scale


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 9))
def test_sam_solution_properties(seed, n):
    rng = np.random.default_rng(seed)
    problem = random_sam_problem(rng, n)
    result = solve_sam(problem, stop=TIGHT)
    assert result.converged
    assert np.all(result.x >= 0)
    scale = float(problem.s0.max()) + 1.0
    np.testing.assert_allclose(
        result.x.sum(axis=1), result.x.sum(axis=0), atol=1e-6 * scale
    )
    v = kkt_violations(problem, result.x, result.lam, result.mu, s=result.s)
    assert max(v.values()) < 2e-5 * scale
