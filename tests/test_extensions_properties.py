"""Property-based tests for the extension solvers (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.convergence import StoppingRule
from repro.extensions.bounded import BoundedProblem, solve_bounded
from repro.extensions.entropy import EntropyProblem, solve_entropy
from repro.extensions.intervals import IntervalTotalsProblem, solve_intervals
from repro.extensions.three_dim import ThreeWayProblem, solve_three_way

TIGHT = StoppingRule(eps=1e-8, max_iterations=20_000)
seeds = st.integers(0, 50_000)


@settings(max_examples=25, deadline=None)
@given(seed=seeds, width=st.floats(0.02, 0.5))
def test_interval_objective_monotone_in_width(seed, width):
    """Wider total intervals can only lower the optimal objective."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(1.0, 20.0, (5, 5))
    gamma = rng.uniform(0.5, 3.0, (5, 5))
    s_mid = x0.sum(axis=1) * rng.uniform(1.1, 1.4, 5)
    d_mid = x0.sum(axis=0) * rng.uniform(1.1, 1.4, 5)
    d_mid *= s_mid.sum() / d_mid.sum()

    def solve_width(w):
        p = IntervalTotalsProblem(
            x0=x0, gamma=gamma,
            s_lo=s_mid * (1 - w), s_hi=s_mid * (1 + w),
            d_lo=d_mid * (1 - w), d_hi=d_mid * (1 + w),
        )
        return solve_intervals(p, stop=TIGHT).objective

    narrow = solve_width(width / 2)
    wide = solve_width(width)
    assert wide <= narrow * (1 + 1e-6) + 1e-9


@settings(max_examples=25, deadline=None)
@given(seed=seeds, cap_factor=st.floats(1.05, 3.0))
def test_bounded_objective_monotone_in_cap(seed, cap_factor):
    """Loosening a uniform cap can only lower the optimum."""
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(1.0, 20.0, (4, 4))
    witness = x0 * rng.uniform(0.8, 1.8, (4, 4))
    s0 = witness.sum(axis=1)
    d0 = witness.sum(axis=0)
    base_cap = float(witness.max())

    def solve_cap(factor):
        p = BoundedProblem(
            x0=x0, gamma=np.ones((4, 4)), s0=s0, d0=d0,
            upper=np.full((4, 4), base_cap * factor),
        )
        return solve_bounded(p, stop=TIGHT).objective

    tight_obj = solve_cap(cap_factor)
    loose_obj = solve_cap(cap_factor * 1.5)
    assert loose_obj <= tight_obj * (1 + 1e-6) + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_entropy_solution_preserves_support_and_positivity(seed):
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(0.5, 20.0, (5, 6))
    x0[rng.random((5, 6)) < 0.3] = 0.0
    x0[:, 0] = np.maximum(x0[:, 0], 0.5)
    x0[0, :] = np.maximum(x0[0, :], 0.5)
    witness = x0 * rng.uniform(0.7, 1.5, (5, 6))
    p = EntropyProblem(
        x0=x0, s0=witness.sum(axis=1), d0=witness.sum(axis=0)
    )
    result = solve_entropy(p, stop=StoppingRule(
        eps=1e-9, criterion="imbalance", max_iterations=100_000))
    assert result.converged
    # Zero cells stay zero, positive cells stay positive (RAS property).
    assert np.all(result.x[x0 == 0.0] == 0.0)
    assert np.all(result.x[x0 > 0.0] > 0.0)


@settings(max_examples=15, deadline=None)
@given(seed=seeds, m=st.integers(2, 5), n=st.integers(2, 5), p=st.integers(1, 4))
def test_three_way_feasibility_property(seed, m, n, p):
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(1.0, 10.0, (m, n, p))
    witness = x0 * rng.uniform(0.6, 1.7, (m, n, p))
    problem = ThreeWayProblem(
        x0=x0, gamma=rng.uniform(0.5, 3.0, (m, n, p)),
        a=witness.sum(axis=(1, 2)),
        b=witness.sum(axis=(0, 2)),
        c=witness.sum(axis=(0, 1)),
    )
    result = solve_three_way(problem, stop=TIGHT)
    assert result.converged
    assert np.all(result.x >= 0)
    scale = problem.a.max()
    for value in problem.residuals(result.x).values():
        assert value < 1e-5 * scale
