"""Operator algebra, asymmetric SPE (VI), and the naive reference oracle."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.operators import (
    ColumnEquilibration,
    DualState,
    RowEquilibration,
    Schedule,
    sea_schedule,
)
from repro.core.sea import solve_fixed
from repro.reference import reference_solve_fixed
from repro.spe.asymmetric import (
    AsymmetricSPE,
    asymmetric_equilibrium_violations,
    solve_asymmetric_spe,
)
from repro.spe.model import solve_spe

TIGHT = StoppingRule(eps=1e-9, max_iterations=10_000)


class TestOperators:
    def test_sea_schedule_matches_solver(self, rng):
        problem = random_fixed_problem(rng, 6, 7, total_factor_low=0.4)
        state, sweeps, _ = sea_schedule(problem).run(problem, eps=1e-10)
        result = solve_fixed(problem, stop=TIGHT)
        np.testing.assert_allclose(
            state.flows(problem), result.x, atol=1e-7 * problem.s0.max()
        )

    def test_any_word_is_dual_monotone(self, rng):
        problem = random_fixed_problem(rng, 5, 5, total_factor_low=0.4)
        R = RowEquilibration(problem)
        C = ColumnEquilibration(problem)
        schedule = Schedule([R, R, C, R, C, C])
        _, _, trace = schedule.run(problem, eps=1e-10, max_sweeps=20,
                                   record_dual=True)
        diffs = np.diff(trace)
        assert np.all(diffs > -1e-6 * max(abs(trace[0]), 1.0))

    def test_row_operator_restores_row_feasibility(self, rng):
        problem = random_fixed_problem(rng, 5, 5, total_factor_low=0.4)
        R = RowEquilibration(problem)
        state = R(DualState(lam=np.zeros(5), mu=rng.normal(0, 10, 5)))
        x = state.flows(problem)
        np.testing.assert_allclose(x.sum(axis=1), problem.s0, rtol=1e-9)

    def test_row_biased_word_also_converges(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.4)
        R = RowEquilibration(problem)
        C = ColumnEquilibration(problem)
        state, sweeps, _ = Schedule([R, R, C]).run(problem, eps=1e-9)
        assert state.residual(problem) <= 1e-9 * problem.s0.max()

    def test_repeated_operator_is_idempotent(self, rng):
        """R after R changes nothing: the block max is exact."""
        problem = random_fixed_problem(rng, 5, 5)
        R = RowEquilibration(problem)
        s1 = R(DualState(lam=np.zeros(5), mu=np.zeros(5)))
        s2 = R(s1)
        np.testing.assert_allclose(s1.lam, s2.lam, rtol=1e-12)

    def test_empty_schedule_rejected(self):
        with pytest.raises(ValueError):
            Schedule([])


def _aspe(rng, m=4, n=5, coupling=0.2):
    """Diagonally dominant random asymmetric instance."""
    R = rng.uniform(-coupling, coupling, (m, m))
    np.fill_diagonal(R, rng.uniform(1.0, 2.0, m))
    W = rng.uniform(-coupling, coupling, (n, n))
    np.fill_diagonal(W, rng.uniform(1.0, 2.0, n))
    return AsymmetricSPE(
        p=rng.uniform(5.0, 10.0, m), R=R,
        q=rng.uniform(60.0, 90.0, n), W=W,
        h=rng.uniform(1.0, 10.0, (m, n)),
        g=rng.uniform(0.2, 1.0, (m, n)),
    )


class TestAsymmetricSPE:
    def test_equilibrium_conditions_hold(self, rng):
        problem = _aspe(rng)
        result = solve_asymmetric_spe(problem)
        assert result.converged
        v = asymmetric_equilibrium_violations(
            problem, result.x, result.s, result.d
        )
        price_scale = float(np.max(problem.q))
        assert v["margin_used"] < 1e-3 * price_scale
        assert v["margin_unused"] < 1e-3 * price_scale
        assert v["supply_balance"] < 1e-2 * price_scale

    def test_symmetric_diagonal_case_matches_separable_solver(self, rng):
        """With diagonal R, W the VI collapses to the optimization SPE."""
        m, n = 4, 4
        r = rng.uniform(0.5, 2.0, m)
        w = rng.uniform(0.5, 2.0, n)
        sym = AsymmetricSPE(
            p=rng.uniform(5.0, 10.0, m), R=np.diag(r),
            q=rng.uniform(60.0, 90.0, n), W=np.diag(w),
            h=rng.uniform(1.0, 10.0, (m, n)),
            g=rng.uniform(0.2, 1.0, (m, n)),
        )
        result = solve_asymmetric_spe(sym)
        separable = sym.diagonal_at(np.zeros(m), np.zeros(n))
        baseline = solve_spe(separable, stop=StoppingRule(
            eps=1e-8, criterion="delta-x", max_iterations=50_000))
        np.testing.assert_allclose(result.s, baseline.s, atol=1e-3)
        np.testing.assert_allclose(result.x, baseline.x, atol=1e-3)
        assert result.iterations <= 2  # first projection is already exact

    def test_cross_market_substitution_effect(self, rng):
        """Positive cross supply effects (R_ik > 0) raise rivals' costs:
        total trade falls versus the independent-markets case."""
        m = n = 4
        base = _aspe(rng, m, n, coupling=0.0)
        coupled = AsymmetricSPE(
            p=base.p, R=base.R + 0.3 * (1 - np.eye(m)),
            q=base.q, W=base.W, h=base.h, g=base.g,
        )
        r_base = solve_asymmetric_spe(base)
        r_coupled = solve_asymmetric_spe(coupled)
        assert r_coupled.x.sum() < r_base.x.sum()

    def test_objective_is_nan_by_design(self, rng):
        """No optimization formulation exists: the result carries no
        objective value."""
        result = solve_asymmetric_spe(_aspe(rng))
        assert np.isnan(result.objective)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="own-price"):
            AsymmetricSPE(
                p=np.ones(2), R=np.zeros((2, 2)),
                q=np.ones(2), W=np.eye(2),
                h=np.ones((2, 2)), g=np.ones((2, 2)),
            )


class TestReferenceOracle:
    def test_vectorized_matches_naive_loops(self, rng):
        problem = random_fixed_problem(rng, 5, 6, total_factor_low=0.4)
        x_ref, lam_ref, mu_ref, _ = reference_solve_fixed(
            problem.x0, problem.gamma, problem.s0, problem.d0,
            mask=problem.mask,
        )
        result = solve_fixed(problem, stop=TIGHT)
        np.testing.assert_allclose(
            result.x, x_ref, atol=1e-6 * problem.s0.max()
        )

    def test_masked(self, rng):
        problem = random_fixed_problem(rng, 6, 6, density=0.5,
                                       total_factor_low=0.4)
        x_ref, *_ = reference_solve_fixed(
            problem.x0, problem.gamma, problem.s0, problem.d0,
            mask=problem.mask,
        )
        result = solve_fixed(problem, stop=TIGHT)
        np.testing.assert_allclose(
            result.x, x_ref, atol=1e-6 * problem.s0.max()
        )
        assert np.all(x_ref[~problem.mask] == 0.0)
