"""Shared fixtures and reference oracles for the test suite.

The independent optimality oracle is SciPy's SLSQP on the explicit
QP formulation — slow and only for small instances, but it shares no
code with the library, so agreement is meaningful.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.optimize

from repro.core.problems import ElasticProblem, FixedTotalsProblem, SAMProblem


def random_fixed_problem(
    rng: np.random.Generator,
    m: int,
    n: int,
    weight_spread: float = 10.0,
    total_factor_low: float = 0.5,
    total_factor_high: float = 2.0,
    density: float = 1.0,
) -> FixedTotalsProblem:
    """A random feasible fixed-totals problem."""
    x0 = rng.uniform(0.1, 100.0, (m, n))
    mask = rng.random((m, n)) < density
    for i in np.flatnonzero(~mask.any(axis=1)):
        mask[i, rng.integers(n)] = True
    for j in np.flatnonzero(~mask.any(axis=0)):
        mask[rng.integers(m), j] = True
    gamma = rng.uniform(1.0, weight_spread, (m, n))
    # Totals from a random *feasible* flow on the same pattern (scaled by
    # random factors relative to the base), so the transportation
    # polytope is guaranteed nonempty even for sparse masks.
    witness = np.where(mask, x0, 0.0) * rng.uniform(
        total_factor_low, total_factor_high, (m, n)
    )
    s0 = witness.sum(axis=1)
    d0 = witness.sum(axis=0)
    return FixedTotalsProblem(x0=x0, gamma=gamma, s0=s0, d0=d0, mask=mask)


def random_elastic_problem(
    rng: np.random.Generator, m: int, n: int
) -> ElasticProblem:
    x0 = rng.uniform(0.1, 100.0, (m, n))
    return ElasticProblem(
        x0=x0,
        gamma=rng.uniform(0.5, 5.0, (m, n)),
        s0=x0.sum(axis=1) * rng.uniform(0.7, 1.5, m),
        d0=x0.sum(axis=0) * rng.uniform(0.7, 1.5, n),
        alpha=rng.uniform(0.5, 3.0, m),
        beta=rng.uniform(0.5, 3.0, n),
    )


def random_sam_problem(rng: np.random.Generator, n: int) -> SAMProblem:
    x0 = rng.uniform(0.5, 50.0, (n, n))
    return SAMProblem(
        x0=x0,
        gamma=rng.uniform(0.5, 5.0, (n, n)),
        s0=0.5 * (x0.sum(axis=1) + x0.sum(axis=0)) * rng.uniform(0.8, 1.3, n),
        alpha=rng.uniform(0.5, 3.0, n),
    )


def reference_fixed_solution(problem: FixedTotalsProblem) -> np.ndarray:
    """Solve a small fixed-totals problem with SciPy trust-constr
    (independent oracle; use only for m*n up to ~50)."""
    import warnings

    m, n = problem.shape
    mask = problem.mask.ravel()
    gamma = problem.gamma.ravel()
    x0 = np.where(problem.mask, problem.x0, 0.0).ravel()

    A_rows = np.zeros((m, m * n))
    for i in range(m):
        A_rows[i, i * n:(i + 1) * n] = 1.0
    A_cols = np.zeros((n, m * n))
    for j in range(n):
        A_cols[j, j::n] = 1.0
    constraint = scipy.optimize.LinearConstraint(
        np.vstack([A_rows, A_cols]),
        np.concatenate([problem.s0, problem.d0]),
        np.concatenate([problem.s0, problem.d0]),
    )
    bounds = scipy.optimize.Bounds(0.0, np.where(mask, np.inf, 0.0))
    start = np.where(
        mask,
        np.outer(problem.s0, problem.d0).ravel() / max(problem.s0.sum(), 1e-12),
        0.0,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")  # singular constraint Jacobian is expected
        res = scipy.optimize.minimize(
            lambda z: float(np.sum(gamma * (z - x0) ** 2 * mask)),
            start,
            jac=lambda z: 2.0 * gamma * (z - x0) * mask,
            hess=lambda z: np.diag(2.0 * gamma * mask),
            bounds=bounds,
            constraints=[constraint],
            method="trust-constr",
            options={"maxiter": 3000, "gtol": 1e-10, "xtol": 1e-12},
        )
    if res.status not in (0, 1, 2):  # 0 = maxiter (still near-optimal), 1/2 = converged
        pytest.skip(f"trust-constr oracle failed: {res.message}")
    return res.x.reshape(m, n)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
