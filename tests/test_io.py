"""CSV/NPZ serialization round-trips."""

import numpy as np
import pytest

from conftest import random_elastic_problem, random_fixed_problem, random_sam_problem
from repro.core.problems import GeneralProblem
from repro.datasets.general import dense_spd_weights
from repro.io import (
    load_problem,
    problem_from_jsonable,
    problem_to_jsonable,
    read_table_csv,
    save_problem,
    write_table_csv,
)


class TestCSV:
    def test_round_trip(self, tmp_path, rng):
        x = rng.uniform(0, 10, (4, 3))
        path = tmp_path / "table.csv"
        write_table_csv(path, x, ["a", "b", "c", "d"], ["x", "y", "z"])
        back, rows, cols = read_table_csv(path)
        np.testing.assert_allclose(back, x, rtol=1e-5)
        assert rows == ["a", "b", "c", "d"]
        assert cols == ["x", "y", "z"]

    def test_default_labels(self, tmp_path):
        path = tmp_path / "t.csv"
        write_table_csv(path, np.ones((2, 2)))
        _, rows, cols = read_table_csv(path)
        assert rows == ["r0", "r1"]
        assert cols == ["c0", "c1"]

    def test_label_count_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="label counts"):
            write_table_csv(tmp_path / "t.csv", np.ones((2, 2)), ["only-one"], None)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(",c0,c1\nr0,1.0\n")
        with pytest.raises(ValueError, match="cells"):
            read_table_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("\n")
        with pytest.raises(ValueError, match="header"):
            read_table_csv(path)


class TestNPZ:
    def test_fixed_round_trip(self, tmp_path, rng):
        problem = random_fixed_problem(rng, 5, 4, density=0.7)
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        np.testing.assert_array_equal(back.x0, problem.x0)
        np.testing.assert_array_equal(back.mask, problem.mask)
        np.testing.assert_array_equal(back.s0, problem.s0)

    def test_elastic_round_trip(self, tmp_path, rng):
        problem = random_elastic_problem(rng, 3, 5)
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        np.testing.assert_array_equal(back.alpha, problem.alpha)
        np.testing.assert_array_equal(back.beta, problem.beta)

    def test_sam_round_trip(self, tmp_path, rng):
        problem = random_sam_problem(rng, 4)
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        np.testing.assert_array_equal(back.gamma, problem.gamma)

    def test_general_round_trip(self, tmp_path, rng):
        x0 = rng.uniform(1, 5, (3, 3))
        problem = GeneralProblem(
            kind="fixed", x0=x0, G=dense_spd_weights(9, seed=1),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
        )
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        assert back.kind == "fixed"
        np.testing.assert_array_equal(back.G, problem.G)

    def test_general_elastic_round_trip(self, tmp_path, rng):
        x0 = rng.uniform(1, 5, (3, 2))
        problem = GeneralProblem(
            kind="elastic", x0=x0, G=dense_spd_weights(6, seed=2),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
            A=dense_spd_weights(3, seed=3), B=dense_spd_weights(2, seed=4),
        )
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        assert back.kind == "elastic"
        np.testing.assert_array_equal(back.A, problem.A)
        np.testing.assert_array_equal(back.B, problem.B)
        np.testing.assert_array_equal(back.d0, problem.d0)

    def test_general_sam_round_trip(self, tmp_path, rng):
        x0 = rng.uniform(1, 5, (3, 3))
        problem = GeneralProblem(
            kind="sam", x0=x0, G=dense_spd_weights(9, seed=5),
            s0=0.5 * (x0.sum(axis=1) + x0.sum(axis=0)),
            A=dense_spd_weights(3, seed=6),
        )
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        assert back.kind == "sam"
        assert back.d0 is None and back.B is None
        np.testing.assert_array_equal(back.A, problem.A)

    def test_general_solutions_identical_after_reload(self, tmp_path, rng):
        from repro.core.sea_general import solve_general

        x0 = rng.uniform(1, 5, (3, 3))
        problem = GeneralProblem(
            kind="fixed", x0=x0, G=dense_spd_weights(9, seed=7),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
        )
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        r1 = solve_general(problem)
        r2 = solve_general(load_problem(path))
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_solutions_identical_after_reload(self, tmp_path, rng):
        from repro.core.sea import solve_fixed

        problem = random_fixed_problem(rng, 5, 5)
        path = tmp_path / "p.npz"
        save_problem(path, problem)
        back = load_problem(path)
        r1 = solve_fixed(problem)
        r2 = solve_fixed(back)
        np.testing.assert_array_equal(r1.x, r2.x)

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_problem(tmp_path / "p.npz", object())


class TestJSONWire:
    """The solve service's problem payload format."""

    def test_fixed_round_trip(self, rng):
        problem = random_fixed_problem(rng, 5, 4, density=0.7)
        back = problem_from_jsonable(problem_to_jsonable(problem))
        np.testing.assert_allclose(back.x0, problem.x0)
        np.testing.assert_allclose(back.gamma, problem.gamma)
        np.testing.assert_array_equal(back.mask, problem.mask)
        np.testing.assert_allclose(back.s0, problem.s0)
        np.testing.assert_allclose(back.d0, problem.d0)

    def test_full_mask_omitted(self, rng):
        problem = random_fixed_problem(rng, 3, 3, density=1.0)
        obj = problem_to_jsonable(problem)
        assert "mask" not in obj
        assert problem_from_jsonable(obj).mask.all()

    def test_elastic_round_trip(self, rng):
        problem = random_elastic_problem(rng, 3, 4)
        back = problem_from_jsonable(problem_to_jsonable(problem))
        np.testing.assert_allclose(back.alpha, problem.alpha)
        np.testing.assert_allclose(back.beta, problem.beta)

    def test_sam_round_trip(self, rng):
        problem = random_sam_problem(rng, 4)
        back = problem_from_jsonable(problem_to_jsonable(problem))
        np.testing.assert_allclose(back.gamma, problem.gamma)
        np.testing.assert_allclose(back.alpha, problem.alpha)

    def test_general_round_trip(self, rng):
        x0 = rng.uniform(1, 5, (2, 3))
        problem = GeneralProblem(
            kind="elastic", x0=x0, G=dense_spd_weights(6, seed=8),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
            A=dense_spd_weights(2, seed=9), B=dense_spd_weights(3, seed=10),
        )
        back = problem_from_jsonable(problem_to_jsonable(problem))
        assert back.kind == "elastic"
        np.testing.assert_allclose(back.G, problem.G)
        np.testing.assert_allclose(back.A, problem.A)
        np.testing.assert_allclose(back.B, problem.B)

    def test_json_serializable(self, rng):
        import json

        problem = random_fixed_problem(rng, 4, 4, density=0.6)
        text = json.dumps(problem_to_jsonable(problem))
        back = problem_from_jsonable(json.loads(text))
        np.testing.assert_allclose(back.x0, problem.x0)

    def test_solutions_identical_after_round_trip(self, rng):
        from repro.core.sea import solve_fixed

        problem = random_fixed_problem(rng, 5, 5)
        back = problem_from_jsonable(problem_to_jsonable(problem))
        np.testing.assert_array_equal(
            solve_fixed(problem).x, solve_fixed(back).x
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            problem_from_jsonable({"kind": "nope"})

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            problem_to_jsonable(object())
