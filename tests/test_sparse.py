"""Sparse execution path: structure, segmented kernel, SEA agreement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.sea import solve_fixed
from repro.datasets.io_tables import io_instance
from repro.equilibration.scalar import (
    evaluate_piecewise_linear,
    solve_piecewise_linear_scalar,
)
from repro.sparse.kernel import _segment_cumsum, solve_piecewise_linear_sparse
from repro.sparse.sea import solve_fixed_sparse
from repro.sparse.structure import SparsePattern

TIGHT = StoppingRule(eps=1e-8, max_iterations=5000)


class TestSparsePattern:
    def test_round_trip(self, rng):
        mask = rng.random((6, 9)) < 0.5
        x = np.where(mask, rng.uniform(1, 5, (6, 9)), 0.0)
        pattern, vals = SparsePattern.from_dense(x, mask)
        np.testing.assert_array_equal(pattern.to_dense(vals), x)

    def test_row_and_col_sums(self, rng):
        mask = rng.random((7, 5)) < 0.6
        x = np.where(mask, rng.uniform(1, 5, (7, 5)), 0.0)
        pattern, vals = SparsePattern.from_dense(x, mask)
        np.testing.assert_allclose(pattern.row_sums(vals), x.sum(axis=1))
        np.testing.assert_allclose(pattern.col_sums(vals), x.sum(axis=0))

    def test_empty_rows_and_cols(self):
        mask = np.zeros((3, 3), bool)
        mask[0, 0] = True
        pattern = SparsePattern(mask)
        vals = np.array([2.0])
        np.testing.assert_array_equal(pattern.row_sums(vals), [2.0, 0.0, 0.0])
        np.testing.assert_array_equal(pattern.col_sums(vals), [2.0, 0.0, 0.0])

    def test_csc_permutation_consistent(self, rng):
        mask = rng.random((5, 8)) < 0.5
        pattern = SparsePattern(mask)
        np.testing.assert_array_equal(
            pattern.cols[pattern.csc_perm], pattern.cols_c
        )
        assert np.all(np.diff(pattern.cols_c) >= 0)


class TestSegmentCumsum:
    def test_resets_at_segment_starts(self):
        v = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        starts = np.array([True, False, True, False, False])
        np.testing.assert_allclose(
            _segment_cumsum(v, starts), [1.0, 3.0, 3.0, 7.0, 12.0]
        )

    def test_signed_values(self):
        v = np.array([-1.0, 2.0, -3.0, 4.0])
        starts = np.array([True, False, True, False])
        np.testing.assert_allclose(
            _segment_cumsum(v, starts), [-1.0, 1.0, -3.0, 1.0]
        )


class TestSparseKernel:
    def test_matches_scalar_reference(self, rng):
        m, n = 20, 12
        mask = rng.random((m, n)) < 0.5
        for i in np.flatnonzero(~mask.any(axis=1)):
            mask[i, rng.integers(n)] = True
        pattern = SparsePattern(mask)
        b = rng.uniform(-20, 20, pattern.nnz)
        s = rng.uniform(0.1, 5.0, pattern.nnz)
        target = rng.uniform(1.0, 50.0, m)
        lam = solve_piecewise_linear_sparse(
            pattern.rows, b, s, m, target
        )
        for i in range(m):
            sel = pattern.rows == i
            ref = solve_piecewise_linear_scalar(b[sel], s[sel], target[i])
            g_ref = evaluate_piecewise_linear(ref, b[sel], s[sel])
            g = evaluate_piecewise_linear(lam[i], b[sel], s[sel])
            assert g == pytest.approx(g_ref, abs=1e-8 * max(target[i], 1.0))

    def test_elastic_rows(self, rng):
        m = 8
        rows = np.repeat(np.arange(m), 4)
        b = rng.uniform(-10, 10, rows.size)
        s = rng.uniform(0.1, 3.0, rows.size)
        a = rng.uniform(0.1, 2.0, m)
        c = rng.uniform(-5, 5, m)
        target = np.zeros(m)
        lam = solve_piecewise_linear_sparse(rows, b, s, m, target, a=a, c=c)
        for i in range(m):
            sel = rows == i
            g = evaluate_piecewise_linear(lam[i], b[sel], s[sel], a[i], c[i])
            assert g == pytest.approx(0.0, abs=1e-8 * (np.abs(c[i]) + 1.0) * 20)

    def test_empty_rows_fixed_zero_target(self):
        lam = solve_piecewise_linear_sparse(
            np.array([0, 0]), np.array([1.0, 2.0]), np.array([1.0, 1.0]),
            3, np.array([3.0, 0.0, 0.0]),
        )
        assert lam.shape == (3,)

    def test_empty_row_positive_target_rejected(self):
        with pytest.raises(ValueError, match="empty fixed row"):
            solve_piecewise_linear_sparse(
                np.array([0]), np.array([1.0]), np.array([1.0]),
                2, np.array([1.0, 1.0]),
            )

    def test_zero_slope_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            solve_piecewise_linear_sparse(
                np.array([0]), np.array([1.0]), np.array([0.0]),
                1, np.array([1.0]),
            )

    def test_unsorted_rows_rejected(self):
        with pytest.raises(ValueError, match="row-major"):
            solve_piecewise_linear_sparse(
                np.array([1, 0]), np.ones(2), np.ones(2), 2, np.ones(2)
            )


class TestSparseSEA:
    @pytest.mark.parametrize("density", [0.15, 0.4, 0.8])
    def test_agrees_with_dense_path(self, rng, density):
        problem = random_fixed_problem(
            rng, 25, 20, density=density, total_factor_low=0.4
        )
        dense = solve_fixed(problem, stop=TIGHT)
        sparse = solve_fixed_sparse(problem, stop=TIGHT)
        assert sparse.iterations == dense.iterations
        np.testing.assert_allclose(
            sparse.x, dense.x, atol=1e-8 * problem.s0.max()
        )

    def test_io_instance(self):
        problem = io_instance("IOC72a")
        dense = solve_fixed(problem)
        sparse = solve_fixed_sparse(problem)
        assert sparse.converged
        assert sparse.objective == pytest.approx(dense.objective, rel=1e-6)

    def test_fully_dense_mask_still_works(self, rng):
        problem = random_fixed_problem(rng, 10, 10, density=1.0)
        sparse = solve_fixed_sparse(problem, stop=TIGHT)
        dense = solve_fixed(problem, stop=TIGHT)
        np.testing.assert_allclose(
            sparse.x, dense.x, atol=1e-8 * problem.s0.max()
        )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), density=st.floats(0.2, 0.9))
def test_sparse_dense_equivalence_property(seed, density):
    rng = np.random.default_rng(seed)
    problem = random_fixed_problem(
        rng, 8, 9, density=density, total_factor_low=0.4
    )
    dense = solve_fixed(problem, stop=TIGHT)
    sparse = solve_fixed_sparse(problem, stop=TIGHT)
    np.testing.assert_allclose(sparse.x, dense.x, atol=1e-7 * problem.s0.max())
