"""Cross-module integration: algorithm agreement, end-to-end dataset solves.

Every solver in the library computes (a projection of) the same class of
optimum; these tests assert they agree with each other on shared problem
classes and that the dataset generators produce instances the solvers
actually handle.
"""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.baselines.bachem_korte import solve_bachem_korte
from repro.baselines.ras import solve_ras
from repro.baselines.rc import solve_rc_general
from repro.core.convergence import StoppingRule
from repro.core.kkt import max_kkt_violation
from repro.core.sea import solve_elastic, solve_fixed, solve_sam
from repro.core.sea_general import solve_general
from repro.datasets.general import general_table7_instance
from repro.datasets.io_tables import io_instance
from repro.datasets.migration import migration_instance
from repro.datasets.sam import sam_instance
from repro.datasets.spe_data import spe_instance
from repro.spe.equilibrium import max_equilibrium_violation
from repro.spe.model import solve_spe

TIGHT = StoppingRule(eps=1e-8, max_iterations=10_000)


class TestAlgorithmAgreement:
    def test_sea_bk_agree_on_diagonal_problems(self, rng):
        for _ in range(3):
            problem = random_fixed_problem(rng, 7, 9, total_factor_low=0.3)
            sea = solve_fixed(problem, stop=TIGHT)
            bk = solve_bachem_korte(problem)
            assert bk.objective == pytest.approx(sea.objective, rel=1e-6)

    def test_three_general_solvers_agree(self):
        problem = general_table7_instance(9, seed=42)
        stop = StoppingRule(eps=1e-5, criterion="delta-x")
        sea = solve_general(problem, stop=stop)
        rc = solve_rc_general(problem, stop=stop)
        bk = solve_bachem_korte(problem, stop=stop)
        assert rc.objective == pytest.approx(sea.objective, rel=1e-4)
        assert bk.objective == pytest.approx(sea.objective, rel=1e-4)


class TestDatasetSolves:
    def test_io_instance_solves_with_kkt(self):
        problem = io_instance("IOC77a")
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-4,
                                                        max_iterations=2000))
        assert result.converged
        assert max_kkt_violation(problem, result) < 1e-2 * problem.s0.max()

    def test_sam_instances_balance(self):
        for name in ("STONE", "TURK", "SRI"):
            problem = sam_instance(name)
            result = solve_sam(problem)
            assert result.converged
            rel = np.abs(result.x.sum(axis=1) - result.x.sum(axis=0))
            assert rel.max() < 1e-2 * result.s.max()

    def test_migration_elastic_solves(self):
        problem = migration_instance("MIG6570c")
        result = solve_elastic(problem)
        assert result.converged
        assert np.all(result.x >= 0)
        assert np.all(result.x[~problem.mask] == 0.0)  # no self-migration

    def test_spe_instance_reaches_equilibrium(self):
        spe = spe_instance(15)
        result = solve_spe(spe, stop=StoppingRule(eps=1e-7, criterion="delta-x",
                                                  max_iterations=50_000))
        assert max_equilibrium_violation(spe, result.x, result.s, result.d) < 1e-3

    def test_ras_agrees_with_sea_on_feasibility(self):
        problem = io_instance("IOC72a")
        ras = solve_ras(
            np.where(problem.mask, problem.x0, 0.0), problem.s0, problem.d0
        )
        sea = solve_fixed(problem, stop=StoppingRule(eps=1e-4, max_iterations=2000))
        assert ras.converged
        scale = problem.s0.max()
        np.testing.assert_allclose(ras.x.sum(axis=0), problem.d0,
                                   atol=1e-4 * scale)
        np.testing.assert_allclose(sea.x.sum(axis=0), problem.d0,
                                   atol=1e-6 * scale)


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name)

    def test_quickstart_from_docstring(self):
        import repro

        x0 = np.array([[10.0, 20.0], [30.0, 40.0]])
        problem = repro.FixedTotalsProblem(
            x0=x0, gamma=1.0 / x0,
            s0=np.array([40.0, 60.0]), d0=np.array([50.0, 50.0]),
        )
        result = repro.solve_fixed(problem)
        assert result.converged
        # Default tolerance is the paper's eps = .01 on the iterate change.
        np.testing.assert_allclose(result.x.sum(axis=1), [40.0, 60.0],
                                   atol=1e-2)
