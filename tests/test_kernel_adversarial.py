"""Adversarial numerical cases for the exact-equilibration kernels.

Floating-point equilibration fails, when it fails, at ties: repeated
breakpoints, candidates landing exactly on segment boundaries, extreme
slope spreads, denormal-adjacent magnitudes.  These cases are
constructed, not sampled.
"""

import numpy as np
import pytest

from repro.equilibration.exact import recover_flows, solve_piecewise_linear
from repro.equilibration.scalar import (
    evaluate_piecewise_linear,
    solve_piecewise_linear_scalar,
)
from repro.extensions.bounded import solve_piecewise_linear_bounded
from repro.sparse.kernel import solve_piecewise_linear_sparse


def _check_root(lam, b, s, target, a=0.0, c=0.0, rtol=1e-9):
    g = evaluate_piecewise_linear(lam, b, s, a, c)
    scale = max(abs(target), float(np.sum(s) * (np.abs(b).max() + 1.0)), 1.0)
    assert abs(g - target) < rtol * scale


class TestTies:
    def test_all_breakpoints_identical(self):
        b = np.zeros((1, 5))
        s = np.ones((1, 5))
        lam = solve_piecewise_linear(b, s, np.array([10.0]))
        _check_root(lam[0], b[0], s[0], 10.0)

    def test_candidate_exactly_on_boundary(self):
        # Two cells; solution lands exactly at the second breakpoint.
        b = np.array([[0.0, 2.0]])
        s = np.array([[1.0, 1.0]])
        lam = solve_piecewise_linear(b, s, np.array([2.0]))  # g(2) = 2
        _check_root(lam[0], b[0], s[0], 2.0)

    def test_many_duplicate_groups(self):
        b = np.array([[1.0] * 4 + [3.0] * 4 + [5.0] * 4])
        s = np.full((1, 12), 0.5)
        for target in (0.5, 2.0, 4.0, 7.0, 20.0):
            lam = solve_piecewise_linear(b, s, np.array([target]))
            _check_root(lam[0], b[0], s[0], target)

    def test_scalar_agrees_on_ties(self):
        b = np.array([2.0, 2.0, 2.0, 7.0, 7.0])
        s = np.array([1.0, 2.0, 3.0, 1.0, 1.0])
        for target in (0.0, 1.0, 6.0, 30.0):
            lam = solve_piecewise_linear_scalar(b, s, target)
            _check_root(lam, b, s, target)


class TestExtremes:
    def test_huge_slope_spread(self):
        b = np.array([[0.0, 1.0, 2.0]])
        s = np.array([[1e-10, 1.0, 1e10]])
        for target in (1e-11, 0.5, 1e9):
            lam = solve_piecewise_linear(b, s, np.array([target]))
            _check_root(lam[0], b[0], s[0], target, rtol=1e-6)

    def test_tiny_and_huge_breakpoints(self):
        b = np.array([[-1e12, 0.0, 1e12]])
        s = np.ones((1, 3))
        lam = solve_piecewise_linear(b, s, np.array([5.0]))
        _check_root(lam[0], b[0], s[0], 5.0, rtol=1e-6)

    def test_single_dominant_cell(self):
        # One cell carries virtually the whole total.
        b = np.array([[0.0, 0.0]])
        s = np.array([[1e-12, 1.0]])
        lam = solve_piecewise_linear(b, s, np.array([7.0]))
        x = recover_flows(lam, b, s)
        assert x.sum() == pytest.approx(7.0, rel=1e-9)

    def test_elastic_huge_a(self):
        b = np.array([[0.0]])
        s = np.array([[1.0]])
        lam = solve_piecewise_linear(
            b, s, np.array([0.0]), a=np.array([1e12]), c=np.array([-5.0])
        )
        # a dominates: lam ~= 5/1e12.
        assert lam[0] == pytest.approx(5e-12, rel=1e-6)


class TestCrossKernelConsistency:
    """Dense, sparse and bounded kernels agree on shared inputs."""

    def test_three_kernels_same_equation(self, rng):
        m, n = 7, 9
        B = rng.uniform(-10, 10, (m, n))
        # Force ties in every row.
        B[:, 1] = B[:, 0]
        B[:, 3] = B[:, 2]
        SL = rng.uniform(0.1, 3.0, (m, n))
        target = rng.uniform(1.0, 40.0, m)

        lam_dense = solve_piecewise_linear(B, SL, target)

        rows = np.repeat(np.arange(m), n)
        lam_sparse = solve_piecewise_linear_sparse(
            rows, B.ravel(), SL.ravel(), m, target
        )
        lam_bounded = solve_piecewise_linear_bounded(
            B, np.full((m, n), np.inf), SL, np.zeros(m), target
        )
        for i in range(m):
            g_d = evaluate_piecewise_linear(lam_dense[i], B[i], SL[i])
            g_s = evaluate_piecewise_linear(lam_sparse[i], B[i], SL[i])
            g_b = evaluate_piecewise_linear(lam_bounded[i], B[i], SL[i])
            assert g_d == pytest.approx(target[i], rel=1e-9)
            assert g_s == pytest.approx(target[i], rel=1e-9)
            assert g_b == pytest.approx(target[i], rel=1e-9)

    def test_negative_base_matrix(self, rng):
        """SPE isomorphism produces negative x0 -> breakpoints beyond
        the usual range; all kernels must handle it."""
        from repro.equilibration.exact import equilibrate_rows

        x0 = rng.uniform(-50.0, -1.0, (5, 6))  # all-negative bases
        gamma = rng.uniform(0.5, 2.0, (5, 6))
        s0 = rng.uniform(5.0, 20.0, 5)
        lam, X = equilibrate_rows(x0, gamma, np.zeros(6), target=s0)
        np.testing.assert_allclose(X.sum(axis=1), s0, rtol=1e-9)
        assert np.all(X >= 0.0)


class TestWorkspaceAdversarial:
    """Sort-permutation reuse under hostile orderings.

    The cache accepts a stale permutation only when the permuted
    breakpoints are nondecreasing *and* ties keep original indices
    increasing (stable-sort uniqueness) — these cases attack exactly
    that check: heavy ties, mid-series reorderings, deliberately wrong
    seeds, and NaN poisoning.
    """

    def _sweep_pair(self, base, slopes, target, mus):
        """(cold, warm) lam series over the same dual walk."""
        from repro.equilibration.workspace import SweepWorkspace

        ws = SweepWorkspace(*base.shape)
        cold = [
            solve_piecewise_linear(base - mu[None, :], slopes, target)
            for mu in mus
        ]
        warm = [
            solve_piecewise_linear(
                ws.shift(base, mu), slopes, target, workspace=ws
            )
            for mu in mus
        ]
        return cold, warm, ws

    def test_tie_heavy_mid_series_invalidation(self, rng):
        # Every row is built from a handful of repeated breakpoint
        # values, so almost any dual step creates/breaks ties.  The
        # walk starts with tiny steps (order survives), then takes one
        # violent step that reorders most columns mid-series.
        m, n = 17, 24
        levels = np.array([-3.0, -1.0, 0.0, 2.0, 5.0])
        base = levels[rng.integers(0, levels.size, (m, n))]
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 50.0, m)
        steps = np.full((8, n), 1e-12)
        steps[4] = rng.uniform(-10.0, 10.0, n)  # the invalidating step
        mus = np.cumsum(steps, axis=0)

        cold, warm, ws = self._sweep_pair(base, slopes, target, mus)
        for c, w in zip(cold, warm):
            np.testing.assert_array_equal(c, w)
        assert ws.rows_reused > 0
        assert ws.rows_resorted > m  # first sweep plus the invalidation

    def test_adaptive_resort_both_paths(self, rng):
        # One step perturbs a single row (subset resort: 2*bad < rows);
        # the next reorders every row (full-matrix argsort path).  Both
        # must reproduce the cold kernel exactly.
        m, n = 12, 10
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)

        from repro.equilibration.workspace import SweepWorkspace

        ws = SweepWorkspace(m, n)
        mu = np.zeros(n)
        lam_w = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(base - mu[None, :], slopes, target)
        )

        # Subset path: swap two breakpoints in one row only.  The stale
        # row is fixed by a subset resort or — when the incremental
        # layer catches the two moved columns — a permutation repair;
        # either way only a strict subset of rows is touched.
        base2 = base.copy()
        base2[3, [0, 1]] = base2[3, [1, 0]] + np.array([1.0, -1.0])
        before = ws.rows_resorted
        before_rep = ws.perm_repairs
        lam_w = solve_piecewise_linear(
            ws.shift(base2, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(base2 - mu[None, :], slopes, target)
        )
        subset_fixed = (ws.rows_resorted - before) + (ws.perm_repairs - before_rep)
        assert 0 < subset_fixed < m

        # Full path: negate everything, reversing every row's order.
        base3 = -base2
        before = ws.rows_resorted
        lam_w = solve_piecewise_linear(
            ws.shift(base3, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(base3 - mu[None, :], slopes, target)
        )
        assert ws.rows_resorted - before == m

    def test_wrong_seed_costs_resort_not_correctness(self, rng):
        from repro.equilibration.workspace import SweepWorkspace

        m, n = 9, 11
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        mu = rng.uniform(-1.0, 1.0, n)

        ws = SweepWorkspace(m, n)
        # Reversed identity is (almost surely) wrong for random data.
        ws.seed_permutation(
            np.tile(np.arange(n)[::-1], (m, 1)).astype(np.int64)
        )
        lam_w = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(base - mu[None, :], slopes, target)
        )
        assert ws.rows_resorted > 0

    def test_good_seed_survives_bind(self, rng):
        """A donor's final permutation carries into a fresh workspace's
        first sweep (the service's warm-start perm round-trip)."""
        from repro.equilibration.workspace import SweepWorkspace

        m, n = 9, 11
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        mu = rng.uniform(-1.0, 1.0, n)

        donor = SweepWorkspace(m, n)
        lam_d = solve_piecewise_linear(
            donor.shift(base, mu), slopes, target, workspace=donor
        )
        fresh = SweepWorkspace(m, n)
        fresh.seed_permutation(donor.permutation())
        lam_f = solve_piecewise_linear(
            fresh.shift(base, mu), slopes, target, workspace=fresh
        )
        np.testing.assert_array_equal(lam_d, lam_f)
        assert fresh.rows_resorted == 0  # the seed answered every row
        assert fresh.rows_reused == m

    def test_nan_poisoning_raises_like_cold(self, rng):
        """NaN fails every comparison, so the validity check resorts and
        then raises exactly the cold kernel's error."""
        from repro.equilibration.workspace import SweepWorkspace

        m, n = 6, 8
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        ws = SweepWorkspace(m, n)
        solve_piecewise_linear(
            ws.shift(base, np.zeros(n)), slopes, target, workspace=ws
        )
        # One NaN cell: the row keeps finite candidates, so both paths
        # succeed — the workspace must resort the poisoned row (NaN
        # fails the stable-order check) and still match cold exactly.
        bad = base.copy()
        bad[2, 3] = np.nan
        before = ws.rows_resorted
        lam_w = solve_piecewise_linear(
            ws.shift(bad, np.zeros(n)), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(bad, slopes, target)
        )
        assert ws.rows_resorted > before

        # A fully-NaN row has no finite candidate: both paths raise the
        # same error.
        bad[2] = np.nan
        with pytest.raises(ValueError) as warm_err:
            solve_piecewise_linear(
                ws.shift(bad, np.zeros(n)), slopes, target, workspace=ws
            )
        with pytest.raises(ValueError) as cold_err:
            solve_piecewise_linear(bad, slopes, target)
        assert str(warm_err.value) == str(cold_err.value)
