"""Cost model: calibration bands against the paper's published speedups."""

import numpy as np
import pytest

from repro.core.result import PhaseCounts
from repro.harness.reference import PAPER_TABLES
from repro.parallel.costmodel import CostModel


def _diagonal_counts(n: int, iterations: int, checks: int) -> PhaseCounts:
    """Phase counts of a diagonal SEA run per the paper's operation model."""
    c = PhaseCounts(cells=n * n)
    for _ in range(iterations):
        c.add_equilibration(n, n)
        c.add_equilibration(n, n)
    for _ in range(checks):
        c.add_convergence_check(n, n)
    return c


class TestMechanics:
    def test_one_processor_is_baseline(self):
        c = _diagonal_counts(100, 2, 2)
        model = CostModel.for_fixed()
        p = model.speedup(c, 1)
        assert p.speedup == pytest.approx(1.0)
        assert p.efficiency == pytest.approx(1.0)

    def test_speedup_bounded_by_processors(self):
        c = _diagonal_counts(100, 2, 2)
        model = CostModel.for_fixed()
        for n in (2, 4, 6, 12):
            assert model.speedup(c, n).speedup < n

    def test_pure_parallel_work_scales_linearly(self):
        c = PhaseCounts(parallel_ops=1e9, cells=1)
        model = CostModel()  # no overheads at all
        assert model.speedup(c, 4).speedup == pytest.approx(4.0)

    def test_serial_work_caps_speedup(self):
        c = PhaseCounts(parallel_ops=1e6, serial_ops=1e6, cells=1)
        model = CostModel(kappa_serial=1.0)
        # Amdahl: f = 0.5 -> S_inf = 2.
        assert model.speedup(c, 1000).speedup < 2.0

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            CostModel().time(PhaseCounts(), 0)

    def test_matvec_serial_fraction(self):
        c = PhaseCounts(parallel_ops=1e8, matvec_ops=1e8, cells=1)
        model = CostModel(matvec_serial_fraction=0.5)
        # Half of every matvec stays serial: S_2 = 1 / (0.5 + 0.25).
        assert model.speedup(c, 2).speedup == pytest.approx(1.0 / 0.75)


class TestTable6Calibration:
    """The presets reproduce the paper's Table 6 within a modest band
    and preserve every qualitative ordering."""

    CASES = {
        # label: (n, iterations, checks, model, paper_key)
        "IO72b": (485, 2, 2, CostModel.for_fixed(), "IO72b"),
        "1000x1000": (1000, 1, 1, CostModel.for_fixed(), "1000x1000"),
        "SP500x500": (500, 84, 42, CostModel.for_elastic(), "SP500x500"),
        "SP750x750": (750, 104, 52, CostModel.for_elastic(), "SP750x750"),
    }

    def test_within_band_of_paper(self):
        ref = PAPER_TABLES["table6"]["rows"]
        for label, (n, iters, checks, model, key) in self.CASES.items():
            counts = _diagonal_counts(n, iters, checks)
            for N, (paper_s, _) in ref[key].items():
                predicted = model.speedup(counts, N).speedup
                assert predicted == pytest.approx(paper_s, rel=0.12), (
                    f"{label} N={N}: predicted {predicted:.2f}, paper {paper_s}"
                )

    def test_orderings_preserved(self):
        speedups = {}
        for label, (n, iters, checks, model, _) in self.CASES.items():
            counts = _diagonal_counts(n, iters, checks)
            speedups[label] = {N: model.speedup(counts, N).speedup for N in (2, 4, 6)}
        # Paper orderings at N = 6.
        assert speedups["IO72b"][6] > speedups["1000x1000"][6]
        assert speedups["SP500x500"][6] > speedups["SP750x750"][6]
        assert speedups["1000x1000"][6] > speedups["SP750x750"][6]
        # Efficiency decreasing in N everywhere.
        for s in speedups.values():
            assert s[2] / 2 > s[4] / 4 > s[6] / 6


class TestTable9Calibration:
    def test_sea_beats_rc(self):
        """With the measured phase structure of the 100x100 instance,
        the general presets reproduce Table 9's ordering."""
        # Phase counts measured from the library's own solvers on the
        # Table 9 instance (see harness run_table9).
        sea = PhaseCounts(parallel_ops=4.030e8, matvec_ops=4.0e8,
                          serial_ops=1.5e5, parallel_phases=26,
                          serial_checks=15, cells=10_000)
        rc = PhaseCounts(parallel_ops=3.104e9, matvec_ops=3.1e9,
                         serial_ops=3.6e5, parallel_phases=62,
                         serial_checks=36, cells=10_000)
        m_sea = CostModel.for_general_sea()
        m_rc = CostModel.for_general_rc()
        ref = PAPER_TABLES["table9"]["rows"]
        for N in (2, 4):
            s_sea = m_sea.speedup(sea, N).speedup
            s_rc = m_rc.speedup(rc, N).speedup
            assert s_sea > s_rc
            assert s_sea == pytest.approx(ref["SEA"][N][0], rel=0.05)
            assert s_rc == pytest.approx(ref["RC"][N][0], rel=0.05)
