"""The chaos proxy: seeded fault injection between client and edge.

Every scenario runs the real :class:`repro.edge.EdgeServer` on loopback
with a :class:`repro.chaos.ChaosProxy` in front, so the faults exercise
the same code paths a production client would hit.  The invariants:

* a fault-free schedule is a transparent relay;
* corruption poisons exactly one frame into a structured
  invalid-request error — never a silently wrong answer;
* a truncated or reset pipeline never loses or double-answers a
  request that the edge had already accepted (the journal is the
  ground truth);
* partition windows refuse new connections and heal on schedule;
* schedules round-trip through JSON (including the FaultPlan rider),
  so a soak run is replayable from its artifact.
"""

import asyncio
import json

import pytest

from conftest import random_fixed_problem
from repro.chaos import ChaosProxy, ChaosSchedule
from repro.edge import EdgeClient, EdgeServer
from repro.service import SolveService
from repro.service.faults import FaultPlan
from repro.service.journal import replay
from repro.service.request import SolveRequest
from repro.service.wire import request_to_jsonable


def _line(problem, rid=None, **options) -> dict:
    return request_to_jsonable(
        SolveRequest(problem=problem, id=rid, **options)
    )


async def _start(svc, **kw) -> EdgeServer:
    server = EdgeServer(svc, port=0, **kw)
    await server.start()
    return server


class TestPassthrough:
    def test_default_schedule_relays_transparently(self, rng):
        problems = [random_fixed_problem(rng, 3, 4) for _ in range(5)]

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=2)
                async with ChaosProxy(
                    "127.0.0.1", server.port, ChaosSchedule()
                ) as proxy:
                    async with await EdgeClient.connect(
                        "127.0.0.1", proxy.port
                    ) as client:
                        for i, p in enumerate(problems):
                            await client.send(_line(p, f"r{i}"))
                        got = [await client.recv() for _ in problems]
                    injected = proxy.faults_injected
                await server.close()
            return got, injected

        got, injected = asyncio.run(scenario())
        assert [r["id"] for r in got] == [f"r{i}" for i in range(5)]
        assert all(r["status"] == "ok" for r in got)
        assert injected == 0

    def test_latency_schedule_delays_the_round_trip(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            import time

            with SolveService() as svc:
                server = await _start(svc, window=1)
                # 60 ms each way on every chunk: request and response
                # cross the proxy once each.
                schedule = ChaosSchedule(latency_s=0.06)
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    async with await EdgeClient.connect(
                        "127.0.0.1", proxy.port
                    ) as client:
                        t0 = time.monotonic()
                        resp = await client.request(_line(problem, "r1"))
                        elapsed = time.monotonic() - t0
                await server.close()
            return resp, elapsed

        resp, elapsed = asyncio.run(scenario())
        assert resp["status"] == "ok"
        assert elapsed >= 0.12

    def test_event_log_records_opens_and_closes(self, rng, tmp_path):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                async with ChaosProxy(
                    "127.0.0.1", server.port, ChaosSchedule()
                ) as proxy:
                    async with await EdgeClient.connect(
                        "127.0.0.1", proxy.port
                    ) as client:
                        await client.request(_line(problem, "r1"))
                    await asyncio.sleep(0.05)
                    proxy.write_events(tmp_path / "events.jsonl")
                    events = list(proxy.events)
                await server.close()
            return events

        events = asyncio.run(scenario())
        kinds = [e["event"] for e in events]
        assert "open" in kinds
        lines = (tmp_path / "events.jsonl").read_text().splitlines()
        assert [json.loads(l)["event"] for l in lines] == kinds
        assert all({"t", "conn", "dir", "event"} <= set(json.loads(l))
                   for l in lines)


class TestByteFaults:
    def test_corruption_yields_structured_error_not_wrong_answer(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                # Corrupt the first chunk (the request); max_faults=1
                # leaves the response frame alone so the client can
                # still decode the structured error.
                schedule = ChaosSchedule(
                    seed=5, corrupt_fraction=1.0, max_faults=1
                )

                async def once(proxy):
                    async with await EdgeClient.connect(
                        "127.0.0.1", proxy.port
                    ) as client:
                        await client.send(_line(problem, "r1"))
                        return await client.recv()

                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    resp = await once(proxy)
                    injected = dict(proxy.injected)
                await server.close()
            return resp, injected

        resp, injected = asyncio.run(scenario())
        assert injected["corrupt"] >= 1
        assert resp["status"] == "error"
        assert resp["error"]["kind"] == "invalid-request"

    def test_truncation_mid_frame_never_loses_accepted_requests(
        self, rng, tmp_path
    ):
        """Satellite (d): the first request is accepted cleanly, the
        second dies in a truncated frame; the accepted one drains
        exactly once (journal ground truth), the truncated one never
        reaches the service."""
        problems = [random_fixed_problem(rng, 3, 3) for _ in range(2)]
        journal = tmp_path / "edge.jsonl"

        async def scenario():
            with SolveService(journal=str(journal)) as svc:
                server = await _start(svc, window=1)
                # First chunk per direction is exempt: request r0 always
                # arrives whole.  The second request chunk truncates.
                schedule = ChaosSchedule(
                    seed=3, truncate_fraction=1.0, start_after_chunks=1
                )
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    client = EdgeClient(reader, writer)
                    await client.send(_line(problems[0], "r0"))
                    first = await client.recv()
                    await client.send(_line(problems[1], "r1"))
                    second = await client.recv()  # None: severed
                    injected = dict(proxy.injected)
                await server.drain(10)
            return first, second, injected

        first, second, injected = asyncio.run(scenario())
        assert first["id"] == "r0" and first["status"] == "ok"
        assert second is None
        assert injected["truncate"] == 1
        records = [json.loads(l)
                   for l in journal.read_text().splitlines()]
        response_ids = [r["id"] for r in records
                        if r["type"] == "response"]
        assert response_ids.count("c1:r0") == 1  # once, never doubled
        unanswered, recorded = replay(journal)
        assert not unanswered  # the truncated frame never got accepted
        assert set(recorded) == {"c1:r0"}

    def test_reset_drops_the_connection_without_forwarding(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                schedule = ChaosSchedule(seed=1, reset_fraction=1.0)
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    client = EdgeClient(reader, writer)
                    try:
                        await client.send(_line(problem, "r1"))
                        got = await client.recv()
                    except (ConnectionError, OSError):
                        got = None
                    injected = dict(proxy.injected)
                stats = server.stats
                await server.close()
            return got, injected, stats

        got, injected, stats = asyncio.run(scenario())
        assert got is None
        assert injected["reset"] == 1
        assert stats.requests == 0  # dropped before the edge saw it

    def test_max_faults_caps_the_injection_budget(self, rng):
        problems = [random_fixed_problem(rng, 3, 3) for _ in range(4)]

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                schedule = ChaosSchedule(
                    seed=2, corrupt_fraction=1.0, max_faults=1
                )
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    async with await EdgeClient.connect(
                        "127.0.0.1", proxy.port
                    ) as client:
                        got = []
                        for i, p in enumerate(problems):
                            await client.send(_line(p, f"r{i}"))
                            got.append(await client.recv())
                    injected = proxy.faults_injected
                await server.close()
            return got, injected

        got, injected = asyncio.run(scenario())
        assert injected == 1
        statuses = [r["status"] for r in got]
        assert statuses.count("error") == 1
        assert statuses.count("ok") == len(problems) - 1


class TestPartitions:
    def test_partition_refuses_then_heals(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                schedule = ChaosSchedule(partitions=((0.0, 0.3),))
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    # Inside the window: the connection aborts before any
                    # byte crosses.
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    client = EdgeClient(reader, writer)
                    refused = await client.recv()
                    await asyncio.sleep(0.35)
                    # After the window: a fresh connection works.
                    async with await EdgeClient.connect(
                        "127.0.0.1", proxy.port
                    ) as healed_client:
                        healed = await healed_client.request(
                            _line(problem, "r1")
                        )
                    injected = dict(proxy.injected)
                await server.close()
            return refused, healed, injected

        refused, healed, injected = asyncio.run(scenario())
        assert refused is None
        assert injected["partition-refused"] >= 1
        assert healed["status"] == "ok"

    def test_partition_start_severs_active_connections(self, rng):
        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                schedule = ChaosSchedule(partitions=((0.2, 0.5),))
                async with ChaosProxy(
                    "127.0.0.1", server.port, schedule
                ) as proxy:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", proxy.port
                    )
                    client = EdgeClient(reader, writer)
                    # Idle through the partition start: the watchdog
                    # severs us even though no chunk is in flight.
                    severed = await client.recv()
                    events = [e["event"] for e in proxy.events]
                await server.close()
            return severed, events

        severed, events = asyncio.run(scenario())
        assert severed is None
        assert "partition-start" in events


class TestScheduleRoundTrip:
    def test_json_round_trip_including_fault_plan(self, tmp_path):
        schedule = ChaosSchedule(
            seed=42, latency_s=0.002, jitter_s=0.001, jitter_alpha=1.7,
            bandwidth_bps=1e6, corrupt_fraction=0.01,
            truncate_fraction=0.02, reset_fraction=0.03,
            partitions=((1.0, 2.0), (4.0, 5.0)),
            start_after_chunks=2, max_faults=50,
            shard_kills=((2.5, 0), (3.5, 1)),
            fault_plan=FaultPlan(seed=7, raise_fraction=0.1),
        )
        path = tmp_path / "schedule.json"
        schedule.dump(path)
        loaded = ChaosSchedule.load(path)
        assert loaded == schedule
        assert isinstance(loaded.fault_plan, FaultPlan)
        assert loaded.shard_kills == ((2.5, 0), (3.5, 1))

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown ChaosSchedule"):
            ChaosSchedule.from_jsonable({"seed": 1, "latencies": [1]})

    def test_invalid_fractions_and_windows_are_rejected(self):
        with pytest.raises(ValueError, match="corrupt_fraction"):
            ChaosSchedule(corrupt_fraction=1.5)
        with pytest.raises(ValueError, match="start < end"):
            ChaosSchedule(partitions=((2.0, 1.0),))
        with pytest.raises(ValueError, match="jitter_alpha"):
            ChaosSchedule(jitter_s=0.1, jitter_alpha=1.0)

    def test_rng_streams_are_keyed_per_connection_direction(self):
        schedule = ChaosSchedule(seed=9)
        a = [schedule.rng_for(1, "up").random() for _ in range(3)]
        b = [schedule.rng_for(1, "up").random() for _ in range(3)]
        c = [schedule.rng_for(2, "up").random() for _ in range(3)]
        d = [schedule.rng_for(1, "down").random() for _ in range(3)]
        assert a == b          # replayable
        assert a != c != d     # independent per connection and direction
