"""Fair-share admission edge cases: one kind saturates, another trickles.

The ``max_per_kind`` fair share exists so a flood of one problem kind
cannot starve the other traffic sharing the service.  These tests pin
the edge behaviour the cluster's edge admission builds on: the
saturating kind is limited while the trickling kind keeps being
admitted, shed victims come from the *offending* kind, and every shed
victim is journaled exactly once — recovery never replays (re-solves)
a request the service decided to drop.
"""

import json

import pytest

from conftest import random_elastic_problem, random_fixed_problem
from repro.errors import OverloadedError
from repro.service import SolveService
from repro.service.journal import replay


def journal_records(path, request_id):
    """Count (request, response) journal records carrying ``request_id``."""
    requests = responses = 0
    with open(path) as fh:
        for line in fh:
            record = json.loads(line)
            if record.get("id") == request_id:
                if record["type"] == "request":
                    requests += 1
                elif record["type"] == "response":
                    responses += 1
    return requests, responses


class TestFairShareRejectNewest:
    def test_saturating_kind_is_rejected_while_other_trickles(self, rng):
        """A fixed-totals flood hits its fair share; elastic requests
        keep flowing into the same queue."""
        svc = SolveService(
            warm_start=False, max_queue=6, max_per_kind=4,
            admission_policy="reject-newest",
        )
        for _ in range(4):
            svc.submit(random_fixed_problem(rng, 5, 4))
        # The flood is over its share even though the queue has room.
        with pytest.raises(OverloadedError, match="kind limit"):
            svc.submit(random_fixed_problem(rng, 5, 4))
        # The trickling kind is unaffected by the hot kind's limit.
        trickle = [svc.submit(random_elastic_problem(rng, 5, 4))
                   for _ in range(2)]
        assert len(trickle) == 2
        # Now the *queue* limit fires, even under the trickle's share.
        with pytest.raises(OverloadedError, match="queue limit"):
            svc.submit(random_elastic_problem(rng, 5, 4))
        assert svc.stats().overload_rejections == 2
        # Every admitted request still gets answered.
        responses = svc.drain()
        assert len(responses) == 6 and all(r.ok for r in responses)

    def test_share_frees_up_as_the_hot_kind_drains(self, rng):
        svc = SolveService(
            warm_start=False, max_queue=8, max_per_kind=2,
            admission_policy="reject-newest",
        )
        svc.submit(random_fixed_problem(rng, 5, 4))
        svc.submit(random_fixed_problem(rng, 5, 4))
        with pytest.raises(OverloadedError):
            svc.submit(random_fixed_problem(rng, 5, 4))
        svc.drain()
        # After draining, the kind's slots are free again.
        assert svc.submit(random_fixed_problem(rng, 5, 4))


class TestFairShareShedOldest:
    def test_victim_comes_from_the_offending_kind(self, rng):
        """When the fixed flood overflows its share, the shed victim is
        the oldest *fixed* request — never the trickling elastic one."""
        svc = SolveService(
            warm_start=False, max_queue=8, max_per_kind=3,
            admission_policy="shed-oldest",
        )
        elastic_id = svc.submit(random_elastic_problem(rng, 5, 4))
        flood = [svc.submit(random_fixed_problem(rng, 5, 4))
                 for _ in range(3)]
        svc.submit(random_fixed_problem(rng, 5, 4))  # sheds flood[0]
        responses = {r.id: r for r in svc.drain() + svc.collect()}
        victim = responses[flood[0]]
        assert not victim.ok and victim.error_kind == "overloaded"
        assert responses[elastic_id].ok, "shed took the trickling kind"
        assert svc.stats().overload_sheds == 1

    def test_shed_victims_journaled_exactly_once(self, rng, tmp_path):
        """The shed *is* the victim's answer: exactly one request record
        and one response record land in the journal, and recovery
        replays nothing for it."""
        journal = tmp_path / "svc.journal"
        svc = SolveService(
            warm_start=False, journal=journal,
            max_queue=4, admission_policy="shed-oldest",
        )
        ids = [svc.submit(random_fixed_problem(rng, 5, 4))
               for _ in range(4)]
        svc.submit(random_fixed_problem(rng, 5, 4))  # sheds ids[0]
        assert journal_records(journal, ids[0]) == (1, 1)
        shed = {r.id for r in svc.collect() if not r.ok}
        assert shed == {ids[0]}
        # Crash here: recovery must treat the victim as answered.
        pending, answered = replay(journal)
        assert ids[0] not in {req.id for req in pending}
        assert answered[ids[0]].error_kind == "overloaded"
        recovered = SolveService.recover(journal, warm_start=False)
        assert ids[0] in recovered.recovered
        replayed = {r.id for r in recovered.drain()}
        assert ids[0] not in replayed, "recovery re-solved a shed victim"
        assert replayed >= set(ids[1:])

    def test_external_shed_oldest_is_delivered_not_retained(
        self, rng, tmp_path
    ):
        """``shed_oldest()`` (the cluster router's edge shed) hands the
        victim response to the caller and journals it once — it must not
        surface a second time through ``collect()``."""
        journal = tmp_path / "svc.journal"
        svc = SolveService(warm_start=False, journal=journal)
        ids = [svc.submit(random_fixed_problem(rng, 5, 4))
               for _ in range(3)]
        victim = svc.shed_oldest()
        assert victim is not None and victim.id == ids[0]
        assert victim.error_kind == "overloaded"
        assert journal_records(journal, ids[0]) == (1, 1)
        later = svc.drain() + svc.collect()
        assert ids[0] not in {r.id for r in later}, "victim delivered twice"
        assert {r.id for r in later} == set(ids[1:])

    def test_external_shed_respects_kind_filter(self, rng):
        svc = SolveService(warm_start=False)
        fixed_id = svc.submit(random_fixed_problem(rng, 5, 4))
        elastic_id = svc.submit(random_elastic_problem(rng, 5, 4))
        victim = svc.shed_oldest(kind="elastic")
        assert victim is not None and victim.id == elastic_id
        assert svc.shed_oldest(kind="elastic") is None
        assert [r.id for r in svc.drain()] == [fixed_id]

    def test_shed_on_empty_queue_returns_none(self):
        assert SolveService(warm_start=False).shed_oldest() is None


class TestFairShareBlock:
    def test_block_converts_kind_overflow_into_latency(self, rng):
        """Under ``block`` the hot kind's overflow drains the queue
        instead of erroring — nothing is lost, everything is answered."""
        svc = SolveService(
            warm_start=False, max_queue=8, max_per_kind=2,
            admission_policy="block",
        )
        ids = [svc.submit(random_fixed_problem(rng, 5, 4))
               for _ in range(2)]
        ids.append(svc.submit(random_fixed_problem(rng, 5, 4)))
        assert svc.stats().admission_blocks == 1
        responses = {r.id: r for r in svc.drain() + svc.collect()}
        assert sorted(responses) == sorted(ids)
        assert all(r.ok for r in responses.values())


class TestShedAuditRegressions:
    """Audit of the ``("shed", "kind")`` path: victim identity, the
    mixed-engine crash, and the cluster's victimless-shed drift."""

    def test_mixed_engine_shed_does_not_crash(self, rng):
        """Regression: a sparse-engine request (kind ``fixed/sparse``)
        queued ahead of the dense victim made the kind-scoped shed
        remove-by-equality, which compares the problem dataclasses
        field-wise -> ndarray ``==`` -> ambiguous-truth ValueError."""
        svc = SolveService(
            warm_start=False, max_queue=8, max_per_kind=2,
            admission_policy="shed-oldest",
        )
        sparse_id = svc.submit(random_fixed_problem(rng, 4, 4),
                               engine="sparse")
        first = svc.submit(random_fixed_problem(rng, 4, 4))
        second = svc.submit(random_fixed_problem(rng, 4, 4))
        third = svc.submit(random_fixed_problem(rng, 4, 4))
        shed = svc.collect()
        assert [r.id for r in shed] == [first]
        assert shed[0].error_kind == "overloaded"
        answered = {r.id for r in svc.drain()}
        assert answered == {sparse_id, second, third}

    def test_incoming_request_is_never_its_own_victim(self, rng):
        """The admission decision runs *before* the incoming request is
        queued, so the shed victim is always a previously queued
        request — at ``max_per_kind=1`` each submit evicts its
        predecessor, never itself."""
        svc = SolveService(
            warm_start=False, max_queue=8, max_per_kind=1,
            admission_policy="shed-oldest",
        )
        ids = [svc.submit(random_fixed_problem(rng, 4, 4))
               for _ in range(4)]
        victims = [r.id for r in svc.collect()]
        assert victims == ids[:-1]
        assert [r.id for r in svc.drain()] == [ids[-1]]

    def test_cluster_victimless_shed_rejects_not_overruns(self, rng):
        """The router counts in-flight ids, which can drift above what
        is actually queued (and evictable) on the shards.  A shed that
        finds no victim anywhere must reject — silently accepting
        would overrun the bound the caller configured."""
        from repro.cluster import ClusterService

        cluster = ClusterService(
            shards=2, shard_backend="inline", max_queue=2,
            admission_policy="shed-oldest",
        )
        try:
            for _ in range(2):
                cluster.submit(random_fixed_problem(rng, 4, 4))
            # Drain the shards behind the router's back: both ids stay
            # in flight at the router, but no shard queue holds
            # anything evictable.
            for sid in cluster.shard_ids:
                cluster._call(sid, "drain")
            with pytest.raises(OverloadedError, match="nothing evictable"):
                cluster.submit(random_fixed_problem(rng, 4, 4))
            assert cluster.router_rejections == 1
        finally:
            cluster.close()

    def test_service_victimless_shed_rejects(self, rng):
        """Belt over braces for the single service: its counts cannot
        drift today (the decide invariant), but if a future decide
        variant fires a shed with nothing evictable, the service must
        reject — never silently accept past the bound."""
        svc = SolveService(
            warm_start=False, max_queue=8,
            admission_policy="shed-oldest",
        )
        svc._admission.decide = lambda *a: ("shed", "kind")
        with pytest.raises(OverloadedError, match="nothing evictable"):
            svc.submit(random_fixed_problem(rng, 4, 4))
        assert svc.stats().overload_rejections == 1
        assert svc.pending == 0
