"""Tests for stopping rules and residual measures."""

import numpy as np
import pytest

from repro.core.convergence import (
    StoppingRule,
    delta_x_residual,
    relative_imbalance,
)


class TestResiduals:
    def test_delta_x(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[1.5, 2.0]])
        assert delta_x_residual(b, a) == pytest.approx(0.5)

    def test_relative_imbalance_rows(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        totals = np.array([3.0, 8.0])
        # Row 0 exact; row 1 off by 1/8.
        assert relative_imbalance(x, totals, axis=0) == pytest.approx(0.125)

    def test_relative_imbalance_cols(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]])
        totals = np.array([4.0, 12.0])
        assert relative_imbalance(x, totals, axis=1) == pytest.approx(0.5)

    def test_zero_total_guarded(self):
        x = np.array([[0.0]])
        assert np.isfinite(relative_imbalance(x, np.array([0.0]), axis=0))


class TestStoppingRule:
    def test_defaults_validate(self):
        rule = StoppingRule()
        assert rule.eps == pytest.approx(1e-2)

    @pytest.mark.parametrize("bad", [
        dict(eps=0.0), dict(check_every=0), dict(max_iterations=0),
        dict(criterion="nope"),
    ])
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ValueError):
            StoppingRule(**bad)

    def test_due_every_other(self):
        rule = StoppingRule(check_every=2, max_iterations=100)
        assert not rule.due(1)
        assert rule.due(2)
        assert not rule.due(3)

    def test_due_at_budget_regardless(self):
        rule = StoppingRule(check_every=10, max_iterations=15)
        assert rule.due(15)

    def test_residual_dispatch(self):
        x_new = np.array([[2.0, 2.0]])
        x_old = np.array([[1.0, 1.0]])
        s = np.array([5.0])
        d = np.array([2.0, 2.0])
        assert StoppingRule(criterion="delta-x").residual(
            x_new, x_old, s, d
        ) == pytest.approx(1.0)
        assert StoppingRule(criterion="imbalance").residual(
            x_new, x_old, s, d
        ) == pytest.approx(0.2)
        assert StoppingRule(criterion="dual-gradient").residual(
            x_new, x_old, s, d
        ) == pytest.approx(1.0)
