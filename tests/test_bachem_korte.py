"""B-K baseline: exactness of the active-set solver, agreement with SEA."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.baselines.bachem_korte import (
    active_set_transportation,
    dykstra_transportation,
    solve_bachem_korte,
)
from repro.core.convergence import StoppingRule
from repro.core.kkt import kkt_violations
from repro.core.problems import GeneralProblem
from repro.core.sea import solve_fixed
from repro.core.sea_general import solve_general
from repro.datasets.general import general_table7_instance

TIGHT = StoppingRule(eps=1e-9, max_iterations=5000)


class TestActiveSet:
    def test_matches_sea_on_diagonal_problem(self, rng):
        problem = random_fixed_problem(rng, 6, 7, total_factor_low=0.3)
        sea = solve_fixed(problem, stop=TIGHT)
        x, lam, mu, _ = active_set_transportation(
            problem.x0, problem.gamma, problem.s0, problem.d0, problem.mask
        )
        assert problem.objective(x) == pytest.approx(sea.objective, rel=1e-6)

    def test_kkt_of_active_set_solution(self, rng):
        problem = random_fixed_problem(rng, 5, 8, total_factor_low=0.3)
        x, lam, mu, _ = active_set_transportation(
            problem.x0, problem.gamma, problem.s0, problem.d0, problem.mask
        )
        v = kkt_violations(problem, x, lam, mu)
        assert max(v.values()) < 1e-5 * float(problem.s0.max())

    def test_interior_solution_single_pivot(self, rng):
        """With generous totals nothing hits the bound: one KKT solve."""
        x0 = rng.uniform(10.0, 20.0, (4, 4))
        problem = random_fixed_problem(rng, 4, 4, total_factor_low=1.0,
                                       total_factor_high=1.05)
        x, _, _, pivots = active_set_transportation(
            problem.x0, problem.gamma, problem.s0, problem.d0, problem.mask
        )
        assert pivots <= 3

    def test_masked_cells_stay_zero(self, rng):
        problem = random_fixed_problem(rng, 6, 6, density=0.5)
        x, _, _, _ = active_set_transportation(
            problem.x0, problem.gamma, problem.s0, problem.d0, problem.mask
        )
        assert np.all(x[~problem.mask] == 0.0)


class TestDykstra:
    def test_converges_to_projection(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.4)
        sea = solve_fixed(problem, stop=TIGHT)
        x, sweeps, residual = dykstra_transportation(
            problem.x0, problem.gamma, problem.s0, problem.d0, problem.mask,
            eps=1e-8 * float(problem.s0.max()), max_sweeps=100_000,
        )
        assert residual <= 1e-8 * float(problem.s0.max())
        assert problem.objective(x) == pytest.approx(sea.objective, rel=1e-5)

    def test_needs_many_more_sweeps_than_sea_iterations(self, rng):
        problem = random_fixed_problem(rng, 8, 8, total_factor_low=0.3)
        sea = solve_fixed(problem, stop=TIGHT)
        _, sweeps, _ = dykstra_transportation(
            problem.x0, problem.gamma, problem.s0, problem.d0, problem.mask,
            eps=1e-6 * float(problem.s0.max()), max_sweeps=100_000,
        )
        assert sweeps > sea.iterations


class TestSolveBachemKorte:
    def test_diagonal_entrypoint(self, rng):
        problem = random_fixed_problem(rng, 5, 5, total_factor_low=0.4)
        result = solve_bachem_korte(problem)
        sea = solve_fixed(problem, stop=TIGHT)
        assert result.converged
        assert result.objective == pytest.approx(sea.objective, rel=1e-6)

    def test_general_agrees_with_sea(self):
        problem = general_table7_instance(8, seed=23)
        stop = StoppingRule(eps=1e-4, criterion="delta-x")
        bk = solve_bachem_korte(problem, stop=stop)
        sea = solve_general(problem, stop=stop)
        assert bk.converged
        assert bk.objective == pytest.approx(sea.objective, rel=1e-4)

    def test_general_rejects_non_fixed(self):
        problem = GeneralProblem(
            kind="sam", x0=np.ones((2, 2)), G=np.eye(4),
            s0=np.array([2.0, 2.0]), A=np.eye(2),
        )
        with pytest.raises(ValueError, match="fixed"):
            solve_bachem_korte(problem)

    def test_serial_cost_dominates_counts(self, rng):
        """B-K's dense pivots are inherently serial — the cost model sees
        them as such (why B-K has no Table 9 entry)."""
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.3)
        result = solve_bachem_korte(problem)
        assert result.counts.serial_ops > result.counts.parallel_ops
