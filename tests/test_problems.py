"""Validation and objective tests for the problem dataclasses."""

import numpy as np
import pytest

from repro.core.problems import (
    ElasticProblem,
    FixedTotalsProblem,
    GeneralProblem,
    SAMProblem,
)


@pytest.fixture
def small_fixed():
    x0 = np.array([[10.0, 20.0], [30.0, 40.0]])
    return FixedTotalsProblem(
        x0=x0, gamma=np.ones((2, 2)), s0=np.array([30.0, 70.0]),
        d0=np.array([40.0, 60.0]),
    )


class TestFixedTotalsProblem:
    def test_objective_zero_at_base(self, small_fixed):
        assert small_fixed.objective(small_fixed.x0) == 0.0

    def test_objective_weighted(self):
        x0 = np.array([[1.0, 2.0]])
        p = FixedTotalsProblem(
            x0=x0, gamma=np.array([[2.0, 3.0]]),
            s0=np.array([3.0]), d0=np.array([1.0, 2.0]),
        )
        x = np.array([[2.0, 1.0]])
        assert p.objective(x) == pytest.approx(2.0 * 1.0 + 3.0 * 1.0)

    def test_unbalanced_totals_rejected(self):
        with pytest.raises(ValueError, match="balance"):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s0=np.array([1.0, 1.0]), d0=np.array([5.0, 5.0]),
            )

    def test_negative_totals_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s0=np.array([-1.0, 3.0]), d0=np.array([1.0, 1.0]),
            )

    def test_bad_gamma_on_active_cell(self):
        with pytest.raises(ValueError, match="gamma"):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.array([[1.0, 0.0], [1.0, 1.0]]),
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )

    def test_bad_gamma_on_masked_cell_allowed(self):
        mask = np.array([[True, False], [True, True]])
        p = FixedTotalsProblem(
            x0=np.ones((2, 2)), gamma=np.array([[1.0, -5.0], [1.0, 1.0]]),
            s0=np.array([1.0, 2.0]), d0=np.array([2.0, 1.0]), mask=mask,
        )
        assert p.mask is not None

    def test_masked_cells_excluded_from_objective(self):
        mask = np.array([[True, False]])
        p = FixedTotalsProblem(
            x0=np.array([[1.0, 99.0]]), gamma=np.ones((1, 2)),
            s0=np.array([1.0]), d0=np.array([1.0, 0.0]), mask=mask,
        )
        assert p.objective(np.array([[1.0, 0.0]])) == 0.0

    def test_gamma_shape_mismatch(self):
        with pytest.raises(ValueError, match="gamma"):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 3)),
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )


class TestElasticProblem:
    def test_objective_includes_total_terms(self):
        p = ElasticProblem(
            x0=np.array([[1.0]]), gamma=np.array([[1.0]]),
            s0=np.array([2.0]), d0=np.array([3.0]),
            alpha=np.array([2.0]), beta=np.array([0.5]),
        )
        val = p.objective(np.array([[1.0]]), np.array([3.0]), np.array([1.0]))
        assert val == pytest.approx(2.0 * 1.0 + 0.0 + 0.5 * 4.0)

    def test_nonpositive_alpha_rejected(self):
        with pytest.raises(ValueError, match="alpha and beta"):
            ElasticProblem(
                x0=np.ones((1, 1)), gamma=np.ones((1, 1)),
                s0=np.ones(1), d0=np.ones(1),
                alpha=np.array([0.0]), beta=np.ones(1),
            )


class TestSAMProblem:
    def test_must_be_square(self):
        with pytest.raises(ValueError, match="square"):
            SAMProblem(
                x0=np.ones((2, 3)), gamma=np.ones((2, 3)),
                s0=np.ones(2), alpha=np.ones(2),
            )

    def test_objective(self):
        p = SAMProblem(
            x0=np.ones((2, 2)), gamma=2.0 * np.ones((2, 2)),
            s0=np.array([2.0, 2.0]), alpha=np.array([1.0, 1.0]),
        )
        x = np.full((2, 2), 1.5)
        s = np.array([3.0, 3.0])
        assert p.objective(x, s) == pytest.approx(2.0 * 1.0 + 2.0 * 4 * 0.25)


class TestGeneralProblem:
    def test_fixed_kind_valid(self):
        x0 = np.ones((2, 2))
        G = np.eye(4)
        p = GeneralProblem(
            kind="fixed", x0=x0, G=G,
            s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
        )
        assert p.A is None and p.B is None

    def test_asymmetric_G_rejected(self):
        G = np.eye(4)
        G[0, 1] = 1.0
        with pytest.raises(ValueError, match="symmetric"):
            GeneralProblem(
                kind="fixed", x0=np.ones((2, 2)), G=G,
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )

    def test_wrong_G_dimension(self):
        with pytest.raises(ValueError, match="G must be"):
            GeneralProblem(
                kind="fixed", x0=np.ones((2, 2)), G=np.eye(5),
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )

    def test_elastic_kind_requires_A_and_B(self):
        with pytest.raises(ValueError):
            GeneralProblem(
                kind="elastic", x0=np.ones((2, 2)), G=np.eye(4),
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )

    def test_objective_reduces_to_diagonal_case(self):
        rng = np.random.default_rng(3)
        x0 = rng.uniform(1.0, 5.0, (2, 3))
        gamma = rng.uniform(0.5, 2.0, (2, 3))
        G = np.diag(gamma.ravel())
        p = GeneralProblem(
            kind="fixed", x0=x0, G=G,
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
        )
        diag_p = FixedTotalsProblem(
            x0=x0, gamma=gamma, s0=x0.sum(axis=1), d0=x0.sum(axis=0)
        )
        x = x0 + rng.normal(0, 1, (2, 3))
        assert p.objective(x) == pytest.approx(diag_p.objective(x))

    def test_sam_kind_square_check(self):
        with pytest.raises(ValueError, match="square"):
            GeneralProblem(
                kind="sam", x0=np.ones((2, 3)), G=np.eye(6),
                s0=np.ones(2), A=np.eye(2),
            )

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            GeneralProblem(
                kind="bogus", x0=np.ones((2, 2)), G=np.eye(4),
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )
