"""``ServiceStats.merge``: the cluster aggregate's algebra.

Property-style over randomized stats records: merge must add every
counter field (dicts per-key), survive the ``snapshot()``/``as_dict()``
round trip with no field dropped or shared by reference, and pool the
derived rates from summed numerators/denominators rather than
averaging ratios.
"""

import dataclasses

import numpy as np
import pytest

from repro.service.metrics import ServiceStats

KINDS = ("fixed", "elastic", "sam", "fixed/sparse")
ERROR_KINDS = ("overloaded", "infeasible", "deadline-exceeded", "internal")


def random_stats(rng: np.random.Generator) -> ServiceStats:
    """Randomize *every* dataclass field, keyed off its default type —
    a newly added counter is exercised here without editing the test."""
    stats = ServiceStats()
    for f in dataclasses.fields(ServiceStats):
        value = getattr(stats, f.name)
        if isinstance(value, dict):
            keys = ERROR_KINDS if "error" in f.name else KINDS
            setattr(stats, f.name, {
                k: int(rng.integers(0, 50))
                for k in keys if rng.random() < 0.7
            })
        elif isinstance(value, float):
            setattr(stats, f.name, float(rng.uniform(0.0, 100.0)))
        else:
            setattr(stats, f.name, int(rng.integers(0, 1000)))
    return stats


class TestMergeProperties:
    def test_every_field_adds(self, rng):
        for _ in range(25):
            a, b = random_stats(rng), random_stats(rng)
            merged = a.merge(b)
            for f in dataclasses.fields(ServiceStats):
                va, vb = getattr(a, f.name), getattr(b, f.name)
                vm = getattr(merged, f.name)
                if isinstance(va, dict):
                    assert vm == {
                        k: va.get(k, 0) + vb.get(k, 0)
                        for k in set(va) | set(vb)
                    }, f.name
                elif isinstance(va, float):
                    assert vm == pytest.approx(va + vb), f.name
                else:
                    assert vm == va + vb, f.name

    def test_merge_is_commutative(self, rng):
        a, b = random_stats(rng), random_stats(rng)
        assert a.merge(b).as_dict() == b.merge(a).as_dict()

    def test_merge_with_empty_is_identity_on_counters(self, rng):
        a = random_stats(rng)
        merged = a.merge(ServiceStats())
        for f in dataclasses.fields(ServiceStats):
            assert getattr(merged, f.name) == getattr(a, f.name), f.name

    def test_round_trips_through_snapshot_and_as_dict(self, rng):
        """merge(a, b) must survive snapshot()/as_dict() with every
        counter field present and equal — no field dropped, none shared."""
        for _ in range(10):
            a, b = random_stats(rng), random_stats(rng)
            merged = a.merge(b)
            snap = merged.snapshot()
            assert snap == merged and snap is not merged
            direct, via_snapshot = merged.as_dict(), snap.as_dict()
            assert direct == via_snapshot
            for f in dataclasses.fields(ServiceStats):
                assert f.name in direct, f"{f.name} dropped from as_dict"
                want = getattr(merged, f.name)
                if f.name == "total_solve_time":
                    assert direct[f.name] == pytest.approx(want, abs=1e-6)
                else:
                    assert direct[f.name] == want
            # Dict fields must be copies, not aliases into the inputs.
            snap.per_kind["fixed"] = -1
            assert merged.per_kind.get("fixed") != -1

    def test_neither_input_is_mutated(self, rng):
        a, b = random_stats(rng), random_stats(rng)
        before_a, before_b = a.snapshot(), b.snapshot()
        a.merge(b)
        assert a == before_a and b == before_b

    def test_derived_rates_pool_not_average(self):
        """The merged hit rate must be (h1+h2)/(l1+l2) — pooling, not
        the average of per-shard ratios."""
        a = ServiceStats(cache_hits=9, cache_misses=1)      # 90 %
        b = ServiceStats(cache_hits=0, cache_misses=10)     # 0 %
        merged = a.merge(b)
        assert merged.hit_rate == pytest.approx(9 / 20)     # not 45 %... pooled
        a = ServiceStats(sort_rows_reused=30, sort_rows_resorted=10)
        b = ServiceStats(sort_rows_reused=0, sort_rows_resorted=60)
        assert a.merge(b).sort_reuse_rate == pytest.approx(30 / 100)
        a = ServiceStats(completed=2, total_solve_time=4.0,
                         total_iterations=10)
        b = ServiceStats(completed=8, total_solve_time=1.0,
                         total_iterations=30)
        merged = a.merge(b)
        assert merged.mean_solve_time == pytest.approx(0.5)
        assert merged.mean_iterations == pytest.approx(4.0)

    def test_merge_rejects_foreign_types(self):
        with pytest.raises(TypeError, match="merge"):
            ServiceStats().merge({"requests": 1})

    def test_associative_over_a_shard_list(self, rng):
        """reduce(merge, shards) — the cluster aggregate — is grouping-
        independent."""
        shards = [random_stats(rng) for _ in range(4)]
        left = shards[0].merge(shards[1]).merge(shards[2]).merge(shards[3])
        right = shards[0].merge(shards[1].merge(shards[2].merge(shards[3])))
        for f in dataclasses.fields(ServiceStats):
            va, vb = getattr(left, f.name), getattr(right, f.name)
            if isinstance(va, float):
                assert va == pytest.approx(vb), f.name
            else:
                assert va == vb, f.name


class TestMetricsText:
    """Prometheus text exposition (``serve --stats --prometheus``)."""

    _LINE = __import__("re").compile(
        r"^(?:# TYPE [a-z_]+ (?:counter|gauge)"
        r"|[a-z_]+(?:\{[a-z]+=\"[^\"]*\"\})? -?[0-9.e+-]+)$"
    )

    def test_every_field_appears_and_the_format_parses(self, rng):
        stats = random_stats(rng)
        text = stats.metrics_text()
        for f in dataclasses.fields(ServiceStats):
            assert f"repro_{f.name}" in text, f.name
        for line in text.strip().splitlines():
            assert self._LINE.match(line), line

    def test_counters_get_total_suffix_gauges_do_not(self):
        stats = ServiceStats(requests=7, queue_depth=3, cache_size=2)
        text = stats.metrics_text()
        assert "repro_requests_total 7" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "\nrepro_queue_depth 3" in text
        assert "\nrepro_cache_size 2" in text
        assert "repro_queue_depth_total" not in text

    def test_dict_fields_become_labelled_series(self):
        stats = ServiceStats(
            per_kind={"fixed": 4, "sam": 1},
            errors_by_kind={"overloaded": 2},
        )
        text = stats.metrics_text()
        assert 'repro_per_kind_total{kind="fixed"} 4' in text
        assert 'repro_per_kind_total{kind="sam"} 1' in text
        assert 'repro_errors_by_kind_total{kind="overloaded"} 2' in text

    def test_derived_ratios_are_appended_as_gauges(self):
        stats = ServiceStats(cache_hits=3, cache_misses=1)
        text = stats.metrics_text()
        assert "# TYPE repro_cache_hit_rate gauge" in text
        assert "repro_cache_hit_rate 0.75" in text
        assert "repro_mean_solve_time_seconds" in text

    def test_label_values_are_escaped(self):
        stats = ServiceStats(per_kind={'we"ird\n': 1})
        text = stats.metrics_text()
        assert 'kind="we\\"ird\\n"' in text

    def test_edge_stats_exposition(self):
        from repro.edge import EdgeStats

        stats = EdgeStats(connections=2, connections_open=1, requests=5)
        text = stats.metrics_text()
        assert "repro_edge_connections_total 2" in text
        assert "# TYPE repro_edge_connections_open gauge" in text
        assert "repro_edge_requests_total 5" in text
        for line in text.strip().splitlines():
            assert self._LINE.match(line), line
