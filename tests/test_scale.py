"""Scale tests (slow): paper-size instances end to end.

Deselect with ``-m 'not slow'``; the benchmark suite covers the same
ground with timing, these assert correctness holds at scale.
"""

import numpy as np
import pytest

from repro.core.convergence import StoppingRule
from repro.core.sea import solve_fixed
from repro.datasets.synthetic import large_diagonal_fixed
from repro.sparse.sea import solve_fixed_sparse

pytestmark = pytest.mark.slow


class TestPaperScale:
    def test_million_variable_instance(self):
        """The paper's 1000x1000 datapoint: solve and verify feasibility
        at a million variables."""
        problem = large_diagonal_fixed(1000, seed=1000)
        result = solve_fixed(problem)
        assert result.converged
        assert result.iterations <= 5
        scale = float(problem.s0.max())
        assert np.max(np.abs(result.x.sum(axis=0) - problem.d0)) < 1e-8 * scale
        assert np.max(np.abs(result.x.sum(axis=1) - problem.s0)) < 1e-4 * scale

    def test_sparse_large_low_density(self):
        """A 1500x1500 pattern at 10% density through the CSR path."""
        rng = np.random.default_rng(9)
        n = 1500
        mask = rng.random((n, n)) < 0.10
        mask[np.arange(n), rng.integers(0, n, n)] = True
        mask[rng.integers(0, n, n), np.arange(n)] = True
        x0 = np.where(mask, rng.uniform(1.0, 100.0, (n, n)), 0.0)
        witness = x0 * rng.uniform(0.5, 1.5, (n, n))
        from repro.core.problems import FixedTotalsProblem

        problem = FixedTotalsProblem(
            x0=x0, gamma=np.where(mask, 1.0 / np.where(mask, x0, 1.0), 1.0),
            s0=witness.sum(axis=1), d0=witness.sum(axis=0), mask=mask,
        )
        result = solve_fixed_sparse(problem, stop=StoppingRule(
            eps=1e-4, max_iterations=2000))
        assert result.converged
        assert np.all(result.x[~mask] == 0.0)
        scale = float(problem.s0.max()) + 1.0
        assert np.max(np.abs(result.x.sum(axis=0) - problem.d0)) < 1e-6 * scale

    def test_tight_tolerance_additive_iterations(self):
        """Eq. 77 at scale: 1e-2 -> 1e-6 tolerance costs only additive
        extra iterations on a 500^2 instance."""
        problem = large_diagonal_fixed(500, seed=77)
        loose = solve_fixed(problem, stop=StoppingRule(eps=1e-2,
                                                       max_iterations=10_000))
        tight = solve_fixed(problem, stop=StoppingRule(eps=1e-6,
                                                       max_iterations=10_000))
        assert tight.converged
        assert tight.iterations - loose.iterations < 50
