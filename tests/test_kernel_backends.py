"""Kernel-backend registry + bit-identity across every driver.

Every backend's contract is *bit* identity with the ``numpy`` reference
— not closeness.  The adversarial instances here are built around the
ways that contract can break: ties and duplicated breakpoints (stable-
order uniqueness), NaN/inf poisoning (deferred-row fallback), the
adaptive re-sort (strict total key), and the sparse segmented scan
(global-cumsum rounding).  The ``numba`` cases skip — never fail — when
numba is not installed; CI's ``kernel-backends`` job installs it.
"""

import numpy as np
import pytest

from conftest import (
    random_elastic_problem,
    random_fixed_problem,
    random_sam_problem,
)
from repro.core.convergence import StoppingRule
from repro.core.sea import solve_elastic, solve_fixed, solve_sam
from repro.equilibration import backends as bk
from repro.equilibration.backends import (
    BACKEND_ENV,
    available_backends,
    backend_versions,
    get_backend,
    register_backend,
)
from repro.equilibration.exact import solve_piecewise_linear
from repro.equilibration.workspace import SweepWorkspace
from repro.service import SolveService
from repro.sparse.kernel import SparseSweepWorkspace

STOP = StoppingRule(eps=1e-9, max_iterations=5000)

AVAILABLE = available_backends()
COMPILED = [
    name for name, ok in AVAILABLE.items() if ok and name != "numpy"
]


def compiled_backends():
    """Parametrization over available compiled backends (skip if none)."""
    return pytest.mark.parametrize(
        "backend",
        COMPILED
        or [pytest.param("cnative", marks=pytest.mark.skip(
            reason="no compiled backend available"))],
    )


class TestRegistry:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert get_backend().name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("no-such-backend")

    def test_explicit_unavailable_raises(self):
        class Broken(bk.KernelBackend):
            name = "broken-for-test"

            def __init__(self):
                raise RuntimeError("deliberately unavailable")

        register_backend("broken-for-test", Broken)
        try:
            with pytest.raises(RuntimeError, match="unavailable"):
                get_backend("broken-for-test")
        finally:
            bk._FACTORIES.pop("broken-for-test", None)
            bk._UNAVAILABLE.pop("broken-for-test", None)

    def test_env_unavailable_falls_back_to_numpy(self, monkeypatch):
        class Broken(bk.KernelBackend):
            name = "broken-env"

            def __init__(self):
                raise RuntimeError("deliberately unavailable")

        register_backend("broken-env", Broken)
        try:
            monkeypatch.setenv(BACKEND_ENV, "broken-env")
            assert get_backend().name == "numpy"
        finally:
            bk._FACTORIES.pop("broken-env", None)
            bk._UNAVAILABLE.pop("broken-env", None)

    def test_auto_resolves(self):
        backend = get_backend("auto")
        assert backend.name in AVAILABLE and AVAILABLE[backend.name]

    def test_numba_skip_not_fail(self):
        """The repo never requires numba: when it is missing the backend
        is recorded unavailable and everything else keeps working."""
        if AVAILABLE["numba"]:
            assert get_backend("numba").name == "numba"
        else:
            with pytest.raises(RuntimeError, match="unavailable"):
                get_backend("numba")

    def test_versions_metadata(self):
        versions = backend_versions()
        assert versions["numpy"]
        assert "numba" in versions and "cc" in versions

    def test_workspace_accepts_instance_and_name(self):
        ws = SweepWorkspace(3, 4, backend="numpy")
        assert ws.backend_name == "numpy"
        ws2 = SweepWorkspace(3, 4, backend=get_backend("numpy"))
        assert ws2.backend_name == "numpy"


def _adversarial_matrix(rng, m, n):
    """Tie-heavy breakpoints with sign flips and duplicated columns."""
    levels = np.array([-2.0, -1.0, 0.0, 0.0, 1.5, 3.0])
    base = levels[rng.integers(0, levels.size, (m, n))]
    base[:, n // 2] = base[:, 0]  # exact duplicate column
    slopes = rng.uniform(0.5, 2.0, (m, n))
    target = rng.uniform(1.0, 30.0, m)
    return base, slopes, target


@compiled_backends()
class TestCompiledBitIdentity:
    def test_sweep_trajectory_matches_numpy(self, backend, rng):
        m, n = 13, 17
        base, slopes, target = _adversarial_matrix(rng, m, n)
        mus = np.cumsum(rng.uniform(-0.3, 0.3, (6, n)), axis=0)
        ws_ref = SweepWorkspace(m, n, backend="numpy")
        ws_cmp = SweepWorkspace(m, n, backend=backend)
        for mu in mus:
            lam_ref = solve_piecewise_linear(
                ws_ref.shift(base, mu), slopes, target, workspace=ws_ref
            )
            lam_cmp = solve_piecewise_linear(
                ws_cmp.shift(base, mu), slopes, target, workspace=ws_cmp
            )
            np.testing.assert_array_equal(lam_ref, lam_cmp)

    def test_resort_rows_is_stable_argsort(self, backend, rng):
        impl = getattr(get_backend(backend), "resort_rows", None)
        assert impl is not None
        for _ in range(40):
            m = int(rng.integers(1, 10))
            n = int(rng.integers(1, 14))
            be = rng.choice(
                [0.0, -0.0, 1.0, 2.5, np.nan, np.inf, -np.inf], size=(m, n)
            )
            be = be + rng.integers(0, 2, (m, n)) * rng.normal(size=(m, n))
            slopes = rng.random((m, n))
            ref = np.argsort(be, axis=1, kind="stable")
            order = np.empty((m, n), dtype=np.intp)
            for i in range(m):
                order[i] = rng.permutation(n)
            bs = np.empty((m, n))
            ss = np.empty((m, n))
            fi = np.empty((m, n), dtype=np.intp)
            inc = np.empty((m, max(n - 1, 0)), dtype=bool)
            rows = np.arange(m, dtype=np.intp)
            assert impl(
                be, slopes.reshape(-1), rows, order, bs, ss, fi, inc
            )
            np.testing.assert_array_equal(order, ref)
            exp_bs = np.take_along_axis(be, ref, axis=1)
            assert np.array_equal(
                bs.view(np.int64), exp_bs.view(np.int64)
            )  # NaN-safe bitwise compare
            np.testing.assert_array_equal(
                ss, np.take_along_axis(slopes, ref, axis=1)
            )

    def test_nan_poisoned_row_matches_numpy(self, backend, rng):
        m, n = 6, 8
        base, slopes, target = _adversarial_matrix(rng, m, n)
        base = base.astype(float).copy()
        base[2, 3] = np.nan  # finite candidates remain: both must solve
        lam_ref = solve_piecewise_linear(
            base, slopes, target,
            workspace=SweepWorkspace(m, n, backend="numpy"),
        )
        lam_cmp = solve_piecewise_linear(
            base, slopes, target,
            workspace=SweepWorkspace(m, n, backend=backend),
        )
        np.testing.assert_array_equal(lam_ref, lam_cmp)

    def test_solo_drivers_match_numpy(self, backend, rng, monkeypatch):
        problems = {
            "fixed": (solve_fixed, random_fixed_problem(rng, 9, 8)),
            "elastic": (solve_elastic, random_elastic_problem(rng, 7, 9)),
            "sam": (solve_sam, random_sam_problem(rng, 8)),
        }
        for kind, (solver, problem) in problems.items():
            monkeypatch.setenv(BACKEND_ENV, "numpy")
            ref = solver(problem, stop=STOP)
            monkeypatch.setenv(BACKEND_ENV, backend)
            cmp_ = solver(problem, stop=STOP)
            assert ref.iterations == cmp_.iterations, kind
            np.testing.assert_array_equal(ref.x, cmp_.x, err_msg=kind)

    def test_service_matches_numpy(self, backend, rng, monkeypatch):
        problem = random_fixed_problem(rng, 7, 7)
        monkeypatch.setenv(BACKEND_ENV, "numpy")
        with SolveService() as svc:
            ref = svc.solve(problem, batchable=False)
        monkeypatch.setenv(BACKEND_ENV, backend)
        with SolveService() as svc:
            cmp_ = svc.solve(problem, batchable=False)
            stats = svc.stats()
        np.testing.assert_array_equal(ref.result.x, cmp_.result.x)
        assert stats.backend_solves.get(backend, 0) > 0


@pytest.mark.skipif(not AVAILABLE.get("cnative"), reason="no C compiler")
class TestSparseBackend:
    def test_sparse_trajectory_matches_reference(self, rng):
        from repro.sparse.kernel import solve_piecewise_linear_sparse

        m, nnz_per = 11, 5
        rows = np.repeat(np.arange(m), nnz_per)
        bp = rng.uniform(-5.0, 5.0, rows.size)
        bp[3] = bp[4]  # duplicate inside a segment
        sl = rng.uniform(0.5, 2.0, rows.size)
        target = rng.uniform(1.0, 20.0, m)
        ws_ref = SparseSweepWorkspace(rows.size, m, backend="numpy")
        ws_c = SparseSweepWorkspace(rows.size, m, backend="cnative")
        assert ws_c.backend_name == "cnative"
        for _ in range(4):
            shift = rng.uniform(-0.2, 0.2, rows.size)
            lam_ref = solve_piecewise_linear_sparse(
                rows, bp + shift, sl, m, target, workspace=ws_ref
            )
            lam_c = solve_piecewise_linear_sparse(
                rows, bp + shift, sl, m, target, workspace=ws_c
            )
            np.testing.assert_array_equal(lam_ref, lam_c)
