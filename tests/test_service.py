"""Solve service: fingerprints, cache, batching, scheduling, wire format."""

import numpy as np
import pytest

from conftest import (
    random_elastic_problem,
    random_fixed_problem,
    random_sam_problem,
)
from repro.core.api import fingerprint, totals_vector
from repro.core.convergence import StoppingRule
from repro.core.problems import FixedTotalsProblem, GeneralProblem
from repro.core.sea import solve_fixed
from repro.core.sea_general import solve_general
from repro.datasets.general import dense_spd_weights
from repro.service import (
    SolveRequest,
    SolveService,
    WarmStartCache,
    solve_fixed_batch,
)
from repro.service.wire import (
    request_from_jsonable,
    request_to_jsonable,
    response_to_jsonable,
)


def perturbed(problem: FixedTotalsProblem, rng, drift=0.02) -> FixedTotalsProblem:
    """Same structure/weights, totals drifted by a balanced perturbation."""
    w = np.where(problem.mask, problem.x0, 0.0) * rng.uniform(
        1.0 - drift, 1.0 + drift, problem.shape
    )
    return FixedTotalsProblem(
        x0=problem.x0, gamma=problem.gamma,
        s0=w.sum(axis=1), d0=w.sum(axis=0), mask=problem.mask,
    )


def infeasible_fixed() -> FixedTotalsProblem:
    """Passes construction, but row 0 has no active cell and s0[0] > 0."""
    return FixedTotalsProblem(
        x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
        s0=np.array([1.0, 3.0]), d0=np.array([2.0, 2.0]),
        mask=np.array([[False, False], [True, True]]),
    )


class TestFingerprint:
    def test_identical_problems_share_key(self, rng):
        p = random_fixed_problem(rng, 5, 4)
        q = FixedTotalsProblem(x0=p.x0, gamma=p.gamma, s0=p.s0, d0=p.d0,
                               mask=p.mask)
        assert fingerprint(p).key == fingerprint(q).key

    def test_totals_change_data_not_bucket(self, rng):
        p = random_fixed_problem(rng, 5, 4)
        q = perturbed(p, rng)
        fp, fq = fingerprint(p), fingerprint(q)
        assert fp.bucket == fq.bucket
        assert fp.key != fq.key

    def test_weights_change_bucket(self, rng):
        p = random_fixed_problem(rng, 5, 4)
        q = FixedTotalsProblem(x0=p.x0, gamma=p.gamma * 2.0, s0=p.s0,
                               d0=p.d0, mask=p.mask)
        assert fingerprint(p).bucket != fingerprint(q).bucket

    def test_kinds_disjoint(self, rng):
        fixed = random_fixed_problem(rng, 4, 4)
        sam = random_sam_problem(rng, 4)
        assert fingerprint(fixed).kind == "fixed"
        assert fingerprint(sam).kind == "sam"
        assert fingerprint(fixed).bucket != fingerprint(sam).bucket

    def test_general_kind_tag(self, rng):
        x0 = rng.uniform(1, 5, (3, 3))
        p = GeneralProblem(kind="fixed", x0=x0, G=dense_spd_weights(9, seed=0),
                           s0=x0.sum(axis=1), d0=x0.sum(axis=0))
        assert fingerprint(p).kind == "general-fixed"

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestWarmStartCache:
    def test_exact_hit(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        cache = WarmStartCache()
        fp, totals = fingerprint(p), totals_vector(p)
        cache.store(fp, totals, np.arange(4.0))
        mu, exact = cache.lookup(fp, totals)
        assert exact
        np.testing.assert_array_equal(mu, np.arange(4.0))

    def test_nearest_neighbor(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        near, far = perturbed(p, rng, drift=0.01), perturbed(p, rng, drift=0.5)
        cache = WarmStartCache()
        cache.store(fingerprint(near), totals_vector(near), np.full(4, 1.0))
        cache.store(fingerprint(far), totals_vector(far), np.full(4, 2.0))
        mu, exact = cache.lookup(fingerprint(p), totals_vector(p))
        assert not exact
        np.testing.assert_array_equal(mu, np.full(4, 1.0))

    def test_miss_outside_bucket(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        other = random_fixed_problem(rng, 4, 4)  # different weights/mask
        cache = WarmStartCache()
        cache.store(fingerprint(other), totals_vector(other), np.zeros(4))
        assert cache.lookup(fingerprint(p), totals_vector(p)) is None

    def test_store_update_refreshes_totals(self, rng):
        """Re-storing a key must update totals along with mu, or
        nearest-neighbor distances against the entry go stale."""
        p = random_fixed_problem(rng, 4, 4)
        cache = WarmStartCache()
        fp, totals = fingerprint(p), totals_vector(p)
        cache.store(fp, totals, np.zeros(4))
        cache.store(fp, totals + 1.0, np.ones(4))
        entry = cache._entries[fp.key]
        np.testing.assert_array_equal(entry.totals, totals + 1.0)
        np.testing.assert_array_equal(entry.mu, np.ones(4))

    def test_lru_eviction(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        cache = WarmStartCache(maxsize=2)
        variants = [perturbed(p, rng) for _ in range(3)]
        for i, v in enumerate(variants):
            cache.store(fingerprint(v), totals_vector(v), np.full(4, float(i)))
        assert len(cache) == 2
        # The oldest entry is gone; its exact lookup now falls back to
        # nearest-neighbor within the shared bucket.
        v0 = variants[0]
        mu, exact = cache.lookup(fingerprint(v0), totals_vector(v0))
        assert not exact

    def test_eviction_empties_bucket_and_misses_cleanly(self, rng):
        """Evicting a bucket's last entry must clean its index: a
        later ``lookup_with_perms`` misses with ``None``, it does not
        crash on a dangling key."""
        a = random_fixed_problem(rng, 4, 4)
        b = random_fixed_problem(rng, 5, 3)  # different bucket
        cache = WarmStartCache(maxsize=1)
        cache.store(fingerprint(a), totals_vector(a), np.zeros(4),
                    perms=(np.arange(4), None))
        cache.store(fingerprint(b), totals_vector(b), np.zeros(5))  # evicts a
        assert len(cache) == 1
        assert cache.lookup_with_perms(fingerprint(a), totals_vector(a)) is None
        hit = cache.lookup_with_perms(fingerprint(b), totals_vector(b))
        assert hit is not None and hit[1] is True and hit[2] is None

    def test_store_refresh_reorders_recency(self, rng):
        """Re-storing (or looking up) an entry makes it most recently
        used, so the *other* entry is the next eviction victim."""
        p = random_fixed_problem(rng, 4, 4)
        v0, v1, v2 = (perturbed(p, rng) for _ in range(3))
        cache = WarmStartCache(maxsize=2)
        cache.store(fingerprint(v0), totals_vector(v0), np.zeros(4))
        cache.store(fingerprint(v1), totals_vector(v1), np.ones(4))
        # refresh v0: it becomes MRU, v1 becomes the eviction victim
        cache.store(fingerprint(v0), totals_vector(v0), np.full(4, 9.0))
        cache.store(fingerprint(v2), totals_vector(v2), np.full(4, 2.0))
        assert cache.lookup(fingerprint(v0), totals_vector(v0))[1] is True
        assert cache.lookup(fingerprint(v1), totals_vector(v1))[1] is False

    def test_state_restore_round_trip_preserves_lru(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        variants = [perturbed(p, rng) for _ in range(3)]
        cache = WarmStartCache(maxsize=4)
        for i, v in enumerate(variants):
            cache.store(fingerprint(v), totals_vector(v),
                        np.full(4, float(i)), perms=(np.arange(4), None))
        restored = WarmStartCache(maxsize=2)
        restored.restore(cache.state())
        # beyond-maxsize states keep the most recently used tail
        assert len(restored) == 2
        assert restored.lookup(fingerprint(variants[0]),
                               totals_vector(variants[0]))[1] is False
        mu, exact, perms = restored.lookup_with_perms(
            fingerprint(variants[2]), totals_vector(variants[2])
        )
        assert exact and perms is not None
        np.testing.assert_array_equal(mu, np.full(4, 2.0))


class TestServiceStats:
    def test_every_field_round_trips(self):
        """Field-driven guarantee: any counter added to ServiceStats
        shows up in snapshot() (independently copied) and as_dict()
        (JSON-serializable) without touching either method."""
        import dataclasses
        import json

        from repro.service import ServiceStats

        stats = ServiceStats()
        for i, f in enumerate(dataclasses.fields(ServiceStats), start=1):
            current = getattr(stats, f.name)
            if isinstance(current, dict):
                setattr(stats, f.name, {"probe": i})
            elif isinstance(current, float):
                setattr(stats, f.name, float(i))
            else:
                setattr(stats, f.name, i)
        snap = stats.snapshot()
        out = snap.as_dict()
        for i, f in enumerate(dataclasses.fields(ServiceStats), start=1):
            expected = {"probe": i} if isinstance(
                getattr(stats, f.name), dict) else type(
                getattr(stats, f.name))(i)
            assert getattr(snap, f.name) == expected, f.name
            assert out[f.name] == expected, f.name
        # derived rates ride along and the whole thing is JSON-clean
        for key in ("cache_hit_rate", "mean_solve_time", "mean_iterations",
                    "sort_reuse_rate", "total_solve_time"):
            assert key in out
        json.dumps(out)

    def test_snapshot_is_independent(self):
        from repro.service import ServiceStats

        stats = ServiceStats()
        stats.count_kind("fixed")
        stats.count_error_kind("overloaded")
        snap = stats.snapshot()
        stats.requests = 7
        stats.per_kind["fixed"] = 99
        stats.errors_by_kind["overloaded"] = 99
        assert snap.requests == 0
        assert snap.per_kind == {"fixed": 1}
        assert snap.errors_by_kind == {"overloaded": 1}


class TestBatch:
    def test_bit_identical_to_solo(self, rng):
        problems = [random_fixed_problem(rng, 7, 6, density=0.7)
                    for _ in range(4)]
        stop = StoppingRule(eps=1e-8, max_iterations=5000)
        mu0s = [None, np.full(6, 0.5), None, np.zeros(6)]
        for batch_result, problem, mu0 in zip(
            solve_fixed_batch(problems, stop=stop, mu0s=mu0s), problems, mu0s
        ):
            solo = solve_fixed(problem, stop=stop, mu0=mu0)
            np.testing.assert_array_equal(batch_result.x, solo.x)
            np.testing.assert_array_equal(batch_result.lam, solo.lam)
            np.testing.assert_array_equal(batch_result.mu, solo.mu)
            assert batch_result.iterations == solo.iterations
            assert batch_result.residual == solo.residual
            assert batch_result.counts.parallel_ops == solo.counts.parallel_ops

    def test_individual_retirement(self, rng):
        easy = random_fixed_problem(rng, 6, 6, total_factor_low=0.95,
                                    total_factor_high=1.05)
        hard = random_fixed_problem(rng, 6, 6, density=0.5,
                                    total_factor_low=0.2,
                                    total_factor_high=2.5)
        stop = StoppingRule(eps=1e-8, max_iterations=5000)
        results = solve_fixed_batch([easy, hard], stop=stop)
        solos = [solve_fixed(p, stop=stop) for p in (easy, hard)]
        assert [r.iterations for r in results] == [s.iterations for s in solos]
        assert results[0].iterations != results[1].iterations

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="shape"):
            solve_fixed_batch([random_fixed_problem(rng, 4, 4),
                               random_fixed_problem(rng, 5, 4)])

    def test_empty_batch(self):
        assert solve_fixed_batch([]) == []

    def test_results_are_not_views_into_batch_stacks(self, rng):
        """Regression: _finalize used to store views into the shared
        (k, m, n) iterate stacks, so results pinned the whole buffer
        and mutating one corrupted its batch-mates."""
        problems = [random_fixed_problem(rng, 5, 5) for _ in range(3)]
        results = solve_fixed_batch(problems)
        for r in results:
            assert r.x.base is None
            assert r.lam.base is None
            assert r.mu.base is None
        untouched = results[2].lam.copy()
        results[0].lam[:] = np.nan
        np.testing.assert_array_equal(results[2].lam, untouched)


class TestWarmStartConvergence:
    def test_warm_equals_cold_solution(self, rng):
        """Acceptance: warm-started solves reach the cold solution."""
        stop = StoppingRule(eps=1e-9, max_iterations=20_000)
        p1 = random_fixed_problem(rng, 8, 7, density=0.6)
        p2 = perturbed(p1, rng)
        seed = solve_fixed(p1, stop=stop)
        cold = solve_fixed(p2, stop=stop)
        warm = solve_fixed(p2, stop=stop, mu0=seed.mu)
        assert warm.converged and cold.converged
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-6)

    def test_warm_equals_cold_through_service(self, rng):
        stop_kw = {"eps": 1e-9, "max_iterations": 20_000}
        p1 = random_fixed_problem(rng, 8, 7)
        p2 = perturbed(p1, rng)
        cold = solve_fixed(p2, stop=StoppingRule(**stop_kw))
        with SolveService() as svc:
            svc.solve(p1, **stop_kw)
            resp = svc.solve(p2, **stop_kw)
        assert resp.warm_started and not resp.cache_exact
        assert resp.converged
        np.testing.assert_allclose(resp.result.x, cold.x, atol=1e-6)

    def test_general_mu0_warm_start(self, rng):
        x0 = rng.uniform(1, 5, (4, 4))
        w = x0 * rng.uniform(0.8, 1.2, x0.shape)
        p = GeneralProblem(kind="fixed", x0=x0, G=dense_spd_weights(16, seed=3),
                           s0=w.sum(axis=1), d0=w.sum(axis=0))
        stop = StoppingRule(eps=1e-7, max_iterations=5000)
        cold = solve_general(p, stop=stop)
        warm = solve_general(p, stop=stop, mu0=cold.mu)
        assert warm.converged
        np.testing.assert_allclose(warm.x, cold.x, atol=1e-5)


class TestService:
    def test_mixed_kind_stream(self, rng):
        problems = [
            random_fixed_problem(rng, 5, 5),
            random_elastic_problem(rng, 4, 6),
            random_sam_problem(rng, 5),
            random_fixed_problem(rng, 5, 5),
        ]
        with SolveService() as svc:
            ids = [svc.submit(p) for p in problems]
            responses = svc.drain()
        assert [r.id for r in responses] == ids
        assert all(r.converged for r in responses)
        stats = svc.stats()
        assert stats.completed == 4
        assert stats.per_kind == {"fixed": 2, "elastic": 1, "sam": 1}
        # The two same-shape fixed problems were fused into one batch.
        assert stats.batches == 1 and stats.batched_requests == 2
        assert all(r.batched == (r.kind == "fixed") for r in responses)

    def test_exact_cache_hit(self, rng):
        p = random_fixed_problem(rng, 5, 5)
        with SolveService() as svc:
            svc.solve(p, batchable=False)
            resp = svc.solve(p, batchable=False)
        assert resp.warm_started and resp.cache_exact
        stats = svc.stats()
        assert stats.cache_exact_hits == 1
        assert 0.0 < stats.hit_rate <= 1.0

    def test_hit_rate_over_windows(self, rng):
        base = random_fixed_problem(rng, 6, 6)
        with SolveService(max_batch=4) as svc:
            for _ in range(2):
                for _ in range(4):
                    svc.submit(perturbed(base, rng))
                svc.drain()
        stats = svc.stats()
        assert stats.cache_misses == 4  # first window only
        assert stats.cache_hits == 4  # second window all warm
        assert stats.hit_rate == pytest.approx(0.5)

    def test_queue_depth(self, rng):
        with SolveService() as svc:
            svc.submit(random_fixed_problem(rng, 4, 4))
            svc.submit(random_fixed_problem(rng, 4, 4))
            assert svc.stats().queue_depth == 2
            svc.drain()
            assert svc.stats().queue_depth == 0

    def test_solve_retains_other_responses_for_collect(self, rng):
        """submit -> solve -> collect must lose nothing: solve() drains
        the whole queue but only returns its own response."""
        with SolveService() as svc:
            early = [svc.submit(random_fixed_problem(rng, 4, 4)),
                     svc.submit(random_sam_problem(rng, 4))]
            mine = svc.solve(random_elastic_problem(rng, 4, 4))
            leftovers = svc.collect()
        assert mine.ok and mine.kind == "elastic"
        assert [r.id for r in leftovers] == early
        assert all(r.ok for r in leftovers)
        assert svc.collect() == []  # delivered exactly once

    def test_error_isolation_single(self, rng):
        with SolveService() as svc:
            good = svc.solve(random_fixed_problem(rng, 4, 4))
            bad = svc.solve(infeasible_fixed())
        assert good.ok
        assert not bad.ok and "InfeasibleProblemError" in bad.error
        assert bad.error_kind == "infeasible"
        assert bad.retries == 0  # deterministic errors are never retried
        stats = svc.stats()
        assert stats.errors == 1 and stats.completed == 1
        assert stats.errors_by_kind == {"infeasible": 1}

    def test_batch_falls_back_on_poisoned_member(self, rng):
        """An infeasible batch-mate must not take down the others."""
        good = FixedTotalsProblem(
            x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
            s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
        )
        with SolveService() as svc:
            gid = svc.submit(good)
            bid = svc.submit(infeasible_fixed())
            responses = {r.id: r for r in svc.drain()}
        assert responses[gid].ok and responses[gid].converged
        assert not responses[bid].ok

    def test_sparse_engine_matches_dense(self, rng):
        p = random_fixed_problem(rng, 6, 6, density=0.5)
        with SolveService() as svc:
            dense = svc.solve(p, eps=1e-8, max_iterations=5000)
            sparse = svc.solve(p, eps=1e-8, max_iterations=5000,
                               engine="sparse")
        assert sparse.kind == "fixed/sparse"
        np.testing.assert_allclose(sparse.result.x, dense.result.x, atol=1e-6)

    def test_usable_after_close(self, rng):
        svc = SolveService(workers=2, backend="thread")
        p = random_fixed_problem(rng, 5, 5)
        first = svc.solve(p, batchable=False)
        svc.close()
        again = svc.solve(perturbed(p, rng), batchable=False)
        assert first.converged and again.converged
        svc.close()

    def test_options_require_bare_problem(self, rng):
        req = SolveRequest(problem=random_fixed_problem(rng, 3, 3))
        with SolveService() as svc:
            with pytest.raises(TypeError, match="options"):
                svc.submit(req, eps=1e-4)

    def test_bad_engine_rejected(self, rng):
        with pytest.raises(ValueError, match="engine"):
            SolveRequest(problem=random_fixed_problem(rng, 3, 3), engine="gpu")


class TestWire:
    def test_request_round_trip(self, rng):
        req = SolveRequest(
            problem=random_fixed_problem(rng, 4, 3, density=0.7),
            id="abc", eps=1e-5, warm_start=False,
        )
        back = request_from_jsonable(request_to_jsonable(req))
        assert back.id == "abc"
        assert back.eps == 1e-5
        assert back.warm_start is False and back.batchable is True
        np.testing.assert_allclose(back.problem.x0, req.problem.x0)
        np.testing.assert_array_equal(back.problem.mask, req.problem.mask)

    def test_response_payloads(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        with SolveService() as svc:
            resp = svc.solve(p)
        obj = response_to_jsonable(resp)
        assert obj["status"] == "ok" and obj["converged"]
        assert np.asarray(obj["x"]).shape == (4, 4)
        slim = response_to_jsonable(resp, include_matrix=False)
        assert "x" not in slim

    def test_error_response_payload(self):
        with SolveService() as svc:
            resp = svc.solve(infeasible_fixed())
        obj = response_to_jsonable(resp)
        assert obj["status"] == "error"
        assert obj["error"]["kind"] == "infeasible"
        assert "InfeasibleProblemError" in obj["error"]["message"]

    def test_nonfinite_residual_is_null(self, rng):
        p = random_fixed_problem(rng, 4, 4)
        with SolveService() as svc:
            resp = svc.solve(p, eps=1e-12, max_iterations=1, criterion="delta-x")
        obj = response_to_jsonable(resp)
        assert obj["converged"] is False

    def test_request_without_problem_rejected(self):
        with pytest.raises(ValueError, match="problem"):
            request_from_jsonable({"id": "x"})


class TestServiceWorkspaces:
    """Persistent sweep workspaces and the warm-start perm round-trip."""

    class _WorkspaceKernel:
        """In-process kernel advertising workspace capability."""

        accepts_workspace = True

        def __init__(self):
            from repro.equilibration.exact import solve_piecewise_linear

            self._solve = solve_piecewise_linear

        def __call__(self, b, s, t, a=None, c=None, timeout=None,
                     workspace=None):
            return self._solve(b, s, t, a=a, c=c, workspace=workspace)

    def test_perm_round_trip_and_counters(self, rng):
        service = SolveService(kernel=self._WorkspaceKernel(), batching=False)
        base = random_fixed_problem(rng, 9, 7)
        first = service.solve(SolveRequest(problem=base, batchable=False))
        assert first.ok
        # The converged solve's final permutations landed in the cache.
        fp = fingerprint(base)
        entry = service.cache.lookup_with_perms(fp, totals_vector(base))
        assert entry is not None and entry[2] is not None

        # A bucket-mate request is seeded from those permutations and
        # the service-level counters report the reuse.
        second = service.solve(
            SolveRequest(problem=perturbed(base, rng), batchable=False)
        )
        assert second.ok and second.warm_started
        stats = service.stats()
        assert stats.sort_sweeps > 0
        assert stats.sort_rows_reused > 0
        assert stats.sort_reuse_rate > 0.0

    def test_unaware_kernel_gets_no_workspaces(self, rng):
        """A kernel without accepts_workspace never sees the kwarg and
        the service reports zero sort sweeps."""
        from repro.equilibration.exact import solve_piecewise_linear

        def plain_kernel(b, s, t, a=None, c=None, timeout=None):
            return solve_piecewise_linear(b, s, t, a=a, c=c)

        service = SolveService(kernel=plain_kernel, batching=False)
        base = random_fixed_problem(rng, 8, 6)
        assert service.solve(
            SolveRequest(problem=base, batchable=False)
        ).ok
        assert service.stats().sort_sweeps == 0

    def test_batch_workspaces_bit_identical_to_serial(self, rng):
        """Fused batches over a retained k-stacked pair match the
        serial cold path member by member."""
        service = SolveService(kernel=self._WorkspaceKernel(), batching=True,
                               warm_start=False)
        problems = [random_fixed_problem(rng, 8, 6) for _ in range(3)]
        reqs = [SolveRequest(problem=p) for p in problems]
        for req in reqs:
            service.submit(req)
        responses = {r.id: r for r in service.drain()}
        assert all(r.ok for r in responses.values())
        assert any(r.batched for r in responses.values())
        from repro.service.batching import solve_batch

        def cold_kernel(b, s, t, a=None, c=None):
            from repro.equilibration.exact import solve_piecewise_linear

            return solve_piecewise_linear(b, s, t, a=a, c=c)

        serial = solve_batch(problems, kernel=cold_kernel)
        for req, res in zip(reqs, serial):
            resp = responses[req.id]
            np.testing.assert_array_equal(resp.result.x, res.x)
            np.testing.assert_array_equal(resp.result.mu, res.mu)
