"""ASCII figure rendering (Figures 5 and 7)."""

import pytest

from repro.harness.figures import ascii_chart, figure5_from_result, figure7_from_result
from repro.harness.report import ExperimentResult


def _fake_table6():
    return ExperimentResult(
        experiment="table6", caption="c",
        columns=["example", "iterations", "N", "S_N", "E_N",
                 "paper S_N", "paper E_N"],
        rows=[
            ["IO72b", 2, 2, 1.93, "96.5%", 1.93, "96.5%"],
            ["IO72b", 2, 4, 3.74, "93.5%", 3.74, "93.5%"],
            ["IO72b", 2, 6, 5.15, "85.8%", 5.15, "85.8%"],
            ["SP500x500", 84, 2, 1.86, "92.9%", 1.86, "92.9%"],
            ["SP500x500", 84, 4, 3.52, "88.1%", 3.52, "88.1%"],
            ["SP500x500", 84, 6, 4.66, "77.8%", 4.66, "77.8%"],
        ],
    )


class TestAsciiChart:
    def test_contains_axes_and_legend(self):
        chart = ascii_chart(
            {"a": [(1, 1), (2, 1.9)], "b": [(1, 1), (2, 1.7)]},
            title="T", x_label="N", y_label="S",
        )
        assert "T" in chart
        assert "legend:" in chart
        assert "o a" in chart
        assert "* b" in chart
        assert "N" in chart

    def test_empty_series(self):
        assert ascii_chart({}, title="empty") == "empty"

    def test_single_point(self):
        chart = ascii_chart({"x": [(1.0, 1.0)]})
        assert "o" in chart

    def test_dimensions(self):
        chart = ascii_chart({"a": [(1, 1), (6, 5)]}, width=30, height=10)
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_lines) == 10


class TestFigureRenderers:
    def test_figure5_includes_every_example(self):
        fig = figure5_from_result(_fake_table6())
        assert "Figure 5" in fig
        assert "IO72b" in fig
        assert "SP500x500" in fig

    def test_figure7(self):
        result = ExperimentResult(
            experiment="table9", caption="c",
            columns=["algorithm", "N", "S_N", "E_N", "paper S_N", "paper E_N"],
            rows=[
                ["SEA", 2, 1.82, "91%", 1.82, "91%"],
                ["SEA", 4, 2.62, "65%", 2.62, "65%"],
                ["RC", 2, 1.75, "88%", 1.75, "88%"],
                ["RC", 4, 2.24, "56%", 2.24, "56%"],
            ],
        )
        fig = figure7_from_result(result)
        assert "Figure 7" in fig
        assert "SEA" in fig and "RC" in fig

    def test_series_anchored_at_one(self):
        """Every speedup curve starts at (1, 1) as in the paper's plots."""
        from repro.harness.figures import _speedup_series

        series = _speedup_series(_fake_table6())
        for pts in series.values():
            assert pts[0] == (1.0, 1.0)
