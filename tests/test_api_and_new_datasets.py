"""solve() dispatcher, contingency/voting datasets, shared-memory kernel."""

import numpy as np
import pytest

from conftest import random_elastic_problem, random_fixed_problem, random_sam_problem
from repro import solve
from repro.core.convergence import StoppingRule
from repro.core.sea import solve_fixed
from repro.datasets.contingency import (
    contingency_instance,
    voting_transition_instance,
)
from repro.datasets.general import general_table7_instance
from repro.parallel.shared import SharedMemoryKernel

TIGHT = StoppingRule(eps=1e-8, max_iterations=5000)


class TestDispatcher:
    def test_routes_core_types(self, rng):
        assert solve(random_fixed_problem(rng, 4, 4)).algorithm == "SEA-fixed"
        assert solve(random_elastic_problem(rng, 4, 4)).algorithm == "SEA-elastic"
        assert solve(random_sam_problem(rng, 4)).algorithm == "SEA-sam"
        assert solve(general_table7_instance(6)).algorithm == "SEA-general"

    def test_routes_extensions(self, rng):
        from repro.extensions import BoundedProblem, EntropyProblem

        x0 = rng.uniform(1, 10, (3, 3))
        bounded = BoundedProblem(
            x0=x0, gamma=np.ones((3, 3)),
            s0=x0.sum(axis=1), d0=x0.sum(axis=0),
        )
        assert solve(bounded).algorithm == "SEA-bounded"
        entropy = EntropyProblem(x0=x0, s0=x0.sum(axis=1), d0=x0.sum(axis=0))
        assert solve(entropy).algorithm == "SEA-entropy"

    def test_routes_spe(self):
        from repro.datasets.spe_data import spe_instance

        assert solve(spe_instance(8)).algorithm == "SEA-spe"

    def test_kwargs_forwarded(self, rng):
        problem = random_fixed_problem(rng, 4, 4, total_factor_low=0.3)
        result = solve(problem, stop=StoppingRule(eps=1e-14, max_iterations=2))
        assert result.iterations == 2

    def test_unknown_type(self):
        with pytest.raises(TypeError, match="no solver registered"):
            solve(object())


class TestContingency:
    def test_census_instance_solves(self):
        problem = contingency_instance()
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-3,
                                                        max_iterations=5000))
        assert result.converged
        # Margins restored to the population values.
        scale = problem.s0.max()
        assert np.max(np.abs(result.x.sum(axis=0) - problem.d0)) < 1e-6 * scale

    def test_sample_scaled_to_population(self):
        problem = contingency_instance(sample=2000, population=500_000)
        # The raw table is scaled up by population/sample.
        assert problem.x0[problem.mask].min() >= 0.5 * 500_000 / 2000 - 1e-9

    def test_margins_consistent(self):
        problem = contingency_instance()
        assert problem.s0.sum() == pytest.approx(problem.d0.sum(), rel=1e-9)

    def test_deterministic(self):
        a = contingency_instance(seed=5)
        b = contingency_instance(seed=5)
        np.testing.assert_array_equal(a.x0, b.x0)


class TestVotingTransitions:
    def test_instance_solves_and_preserves_loyalty_structure(self):
        problem = voting_transition_instance()
        result = solve_fixed(problem, stop=TIGHT)
        assert result.converged
        # Diagonal (loyal voters) dominates each row.
        frac_loyal = np.diag(result.x) / result.x.sum(axis=1)
        assert frac_loyal.mean() > 0.5

    def test_totals_are_election_results(self):
        problem = voting_transition_instance(turnout=1_000_000)
        assert problem.s0.sum() == pytest.approx(1_000_000)
        assert problem.d0.sum() == pytest.approx(1_000_000)

    def test_swing_moves_totals(self):
        problem = voting_transition_instance(swing=0.3)
        assert not np.allclose(problem.s0, problem.d0)


class TestSharedMemoryKernel:
    def test_bit_identical_to_vectorized(self, rng):
        problem = random_fixed_problem(rng, 12, 9, total_factor_low=0.4)
        baseline = solve_fixed(problem, stop=TIGHT)
        with SharedMemoryKernel(workers=2) as kernel:
            result = solve_fixed(problem, stop=TIGHT, kernel=kernel)
        np.testing.assert_array_equal(result.x, baseline.x)

    def test_single_worker_shortcut(self, rng):
        problem = random_fixed_problem(rng, 5, 5)
        with SharedMemoryKernel(workers=1) as kernel:
            result = solve_fixed(problem, kernel=kernel)
            assert kernel._pool is None
        assert result.converged

    def test_validation(self):
        with pytest.raises(ValueError):
            SharedMemoryKernel(workers=0)
