"""RC baseline: agreement with SEA and its heavier phase structure."""

import numpy as np
import pytest

from repro.baselines.rc import solve_rc_general
from repro.core.convergence import StoppingRule
from repro.core.problems import GeneralProblem
from repro.core.sea_general import solve_general
from repro.datasets.general import dense_spd_weights, general_table7_instance

TIGHT = StoppingRule(eps=1e-7, criterion="delta-x", max_iterations=500)


class TestCorrectness:
    def test_agrees_with_sea_on_general_problem(self, rng):
        problem = general_table7_instance(8, seed=11)
        sea = solve_general(problem, stop=TIGHT)
        rc = solve_rc_general(problem, stop=TIGHT)
        assert rc.converged
        assert rc.objective == pytest.approx(sea.objective, rel=1e-4)
        np.testing.assert_allclose(rc.x, sea.x, atol=1e-2 * problem.x0.max())

    def test_feasible_at_exit(self, rng):
        problem = general_table7_instance(10, seed=13)
        rc = solve_rc_general(problem, stop=TIGHT)
        scale = float(problem.s0.max())
        # Column stage runs last: columns exact, rows near-exact.
        assert np.max(np.abs(rc.x.sum(axis=0) - problem.d0)) < 1e-6 * scale
        assert np.max(np.abs(rc.x.sum(axis=1) - problem.s0)) < 1e-3 * scale
        assert np.all(rc.x >= 0)

    def test_rejects_non_fixed_kind(self, rng):
        x0 = np.ones((3, 3))
        problem = GeneralProblem(
            kind="sam", x0=x0, G=np.eye(9), s0=x0.sum(axis=1),
            A=np.eye(3),
        )
        with pytest.raises(ValueError, match="fixed"):
            solve_rc_general(problem)


class TestPhaseStructure:
    def test_rc_does_more_matvecs_than_sea(self):
        """RC runs a projection loop per stage; SEA one per outer
        iteration — the structural source of Table 7's gap."""
        problem = general_table7_instance(12, seed=17)
        stop = StoppingRule(eps=1e-3, criterion="delta-x")
        sea = solve_general(problem, stop=stop)
        rc = solve_rc_general(problem, stop=stop)
        assert rc.counts.matvec_ops > sea.counts.matvec_ops

    def test_rc_has_more_serial_checkpoints(self):
        problem = general_table7_instance(12, seed=17)
        stop = StoppingRule(eps=1e-3, criterion="delta-x")
        sea = solve_general(problem, stop=stop)
        rc = solve_rc_general(problem, stop=stop)
        assert rc.counts.serial_checks > sea.counts.serial_checks

    def test_inner_iterations_recorded(self):
        problem = general_table7_instance(10, seed=19)
        rc = solve_rc_general(problem)
        assert rc.inner_iterations >= 2 * rc.iterations
