"""Kind-aware batch engine: bit-identity, ownership, service routing."""

import numpy as np
import pytest

from conftest import (
    random_elastic_problem,
    random_fixed_problem,
    random_sam_problem,
)
from repro.core.convergence import StoppingRule
from repro.core.problems import FixedTotalsProblem
from repro.core.sea import solve_elastic, solve_fixed, solve_sam
from repro.service import SolveService, solve_batch

KINDS = {
    "fixed": (
        lambda rng: random_fixed_problem(rng, 7, 6, density=0.7),
        solve_fixed,
        StoppingRule(eps=1e-8, max_iterations=5000),
    ),
    "elastic": (
        lambda rng: random_elastic_problem(rng, 7, 6),
        solve_elastic,
        StoppingRule(eps=1e-8, max_iterations=5000),
    ),
    "sam": (
        lambda rng: random_sam_problem(rng, 6),
        solve_sam,
        StoppingRule(eps=1e-6, criterion="imbalance", max_iterations=5000),
    ),
}


@pytest.mark.parametrize("kind", sorted(KINDS))
class TestBatchBitIdentity:
    def test_matches_solo_with_warm_starts(self, rng, kind):
        make, solo, stop = KINDS[kind]
        problems = [make(rng) for _ in range(4)]
        n = problems[0].shape[1]
        mu0s = [None, np.full(n, 0.5), None, rng.normal(size=n)]
        batch = solve_batch(problems, stop=stop, mu0s=mu0s)
        for b, p, mu0 in zip(batch, problems, mu0s):
            r = solo(p, stop=stop, mu0=mu0)
            np.testing.assert_array_equal(b.x, r.x)
            np.testing.assert_array_equal(b.lam, r.lam)
            np.testing.assert_array_equal(b.mu, r.mu)
            np.testing.assert_array_equal(b.s, r.s)
            np.testing.assert_array_equal(b.d, r.d)
            assert b.iterations == r.iterations
            assert b.residual == r.residual
            assert b.objective == r.objective
            assert b.converged and r.converged
            assert b.counts.parallel_ops == r.counts.parallel_ops

    def test_retirement_order_matches_solo_counts(self, rng, kind):
        """Problems retire individually at exactly their solo iteration."""
        make, solo, stop = KINDS[kind]
        problems = [make(rng) for _ in range(6)]
        results = solve_batch(problems, stop=stop)
        solo_iters = [solo(p, stop=stop).iterations for p in problems]
        assert [r.iterations for r in results] == solo_iters
        assert len(set(solo_iters)) > 1  # stragglers genuinely differ

    def test_results_own_their_memory(self, rng, kind):
        make, _, stop = KINDS[kind]
        results = solve_batch([make(rng) for _ in range(3)], stop=stop)
        for r in results:
            for arr in (r.x, r.lam, r.mu, r.s, r.d):
                assert arr.base is None
        # Mutating one result must not leak into any batch-mate.
        snapshot = results[1].x.copy()
        results[0].x[:] = -1.0
        results[0].mu[:] = -1.0
        np.testing.assert_array_equal(results[1].x, snapshot)


class TestBatchValidation:
    def test_mixed_kinds_rejected(self, rng):
        with pytest.raises(TypeError, match="kind"):
            solve_batch([random_fixed_problem(rng, 5, 5),
                         random_sam_problem(rng, 5)])

    def test_mixed_shapes_rejected(self, rng):
        with pytest.raises(ValueError, match="shape"):
            solve_batch([random_elastic_problem(rng, 4, 4),
                         random_elastic_problem(rng, 5, 4)])

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="variant"):
            solve_batch([object()])

    def test_empty_batch(self):
        assert solve_batch([]) == []


class TestServiceKindBatching:
    def test_drain_batches_every_kind(self, rng):
        """Same-kind groups fuse; responses stay in submission order."""
        problems = (
            [random_fixed_problem(rng, 5, 5) for _ in range(3)]
            + [random_elastic_problem(rng, 4, 6) for _ in range(3)]
            + [random_sam_problem(rng, 5) for _ in range(3)]
        )
        order = rng.permutation(len(problems))
        with SolveService() as svc:
            ids = [svc.submit(problems[i]) for i in order]
            responses = svc.drain()
        assert [r.id for r in responses] == ids
        assert all(r.converged and r.batched for r in responses)
        stats = svc.stats()
        assert stats.batches == 3
        assert stats.batched_requests == 9
        assert stats.batches_by_kind == {"fixed": 1, "elastic": 1, "sam": 1}
        assert stats.batched_requests_by_kind == {
            "fixed": 3, "elastic": 3, "sam": 3,
        }

    def test_drain_ordering_mixed_batched_single_error(self, rng):
        """Batched, unbatchable, sparse and failing requests interleave;
        drain() must still answer strictly in submission order."""
        mask = np.ones((4, 4), dtype=bool)
        mask[0] = False  # row 0 has no active cell but s0[0] > 0
        infeasible = FixedTotalsProblem(
            x0=np.ones((4, 4)), gamma=np.ones((4, 4)),
            s0=np.array([1.0, 3.0, 2.0, 2.0]), d0=np.full(4, 2.0),
            mask=mask,
        )
        with SolveService() as svc:
            ids = [
                svc.submit(random_sam_problem(rng, 4)),
                svc.submit(random_fixed_problem(rng, 4, 4)),
                svc.submit(infeasible),
                svc.submit(random_elastic_problem(rng, 4, 4)),
                svc.submit(random_fixed_problem(rng, 4, 4), batchable=False),
                svc.submit(random_elastic_problem(rng, 4, 4)),
                svc.submit(random_fixed_problem(rng, 4, 4, density=0.6),
                           engine="sparse"),
                svc.submit(random_fixed_problem(rng, 4, 4)),
                svc.submit(random_sam_problem(rng, 4)),
            ]
            responses = svc.drain()
        assert [r.id for r in responses] == ids
        by_id = dict(zip(ids, responses))
        assert not by_id[ids[2]].ok
        assert by_id[ids[2]].error_kind == "infeasible"
        assert by_id[ids[4]].batched is False
        assert by_id[ids[6]].kind == "fixed/sparse"
        ok = [r for r in responses if r.ok]
        assert len(ok) == 8 and all(r.converged for r in ok)
        stats = svc.stats()
        assert stats.errors == 1 and stats.completed == 8
        # Two fused sam + two fused elastic batches; the two feasible
        # same-shape fixed requests fused with the infeasible one and
        # fell back to singles, so no fixed batch is counted.
        assert stats.batches_by_kind.keys() == {"sam", "elastic"}

    def test_batch_warm_start_matches_cold_solution(self, rng):
        base = random_sam_problem(rng, 6)
        drift = [
            type(base)(
                x0=base.x0, gamma=base.gamma, alpha=base.alpha,
                s0=base.s0 * f, mask=base.mask,
            )
            for f in (1.01, 0.99, 1.02)
        ]
        stop_kw = {"eps": 1e-9, "max_iterations": 20_000,
                   "criterion": "imbalance"}
        cold = [solve_sam(p, stop=StoppingRule(**stop_kw)) for p in drift]
        with SolveService() as svc:
            for p in drift:
                svc.submit(p, **stop_kw)
            svc.drain()  # populate the cache
            for p in drift:
                svc.submit(p, **stop_kw)
            warm = svc.drain()
        assert all(r.warm_started and r.cache_exact for r in warm)
        for w, c in zip(warm, cold):
            np.testing.assert_allclose(w.result.x, c.x, atol=1e-6)
