"""Tests for the bipartite support-graph utilities."""

import numpy as np

from repro.equilibration.network import component_count, support_components


class TestSupportComponents:
    def test_fully_dense_single_component(self):
        X = np.ones((3, 4))
        rows, cols = support_components(X)
        assert np.unique(np.concatenate([rows, cols])).size == 1

    def test_block_diagonal_two_components(self):
        X = np.zeros((4, 4))
        X[:2, :2] = 1.0
        X[2:, 2:] = 1.0
        rows, cols = support_components(X)
        assert rows[0] == rows[1] == cols[0] == cols[1]
        assert rows[2] == rows[3] == cols[2] == cols[3]
        assert rows[0] != rows[2]
        assert component_count(X) == 2

    def test_empty_matrix_all_singletons(self):
        X = np.zeros((2, 3))
        assert component_count(X) == 5

    def test_tolerance_filters_small_entries(self):
        X = np.array([[1e-12, 0.0], [0.0, 1.0]])
        assert component_count(X, tol=1e-9) == 3

    def test_chain_connectivity(self):
        # r0-c0, r1-c0, r1-c1, r2-c1: one chained component.
        X = np.array([
            [1.0, 0.0],
            [1.0, 1.0],
            [0.0, 1.0],
        ])
        assert component_count(X) == 1

    def test_labels_shapes(self):
        X = np.ones((3, 5))
        rows, cols = support_components(X)
        assert rows.shape == (3,)
        assert cols.shape == (5,)
