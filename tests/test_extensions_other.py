"""Interval-totals, entropy and Ohuchi-Kaji extensions."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.baselines.ras import solve_ras
from repro.core.convergence import StoppingRule
from repro.core.problems import FixedTotalsProblem
from repro.core.sea import solve_fixed
from repro.extensions.entropy import EntropyProblem, solve_entropy
from repro.extensions.intervals import IntervalTotalsProblem, solve_intervals
from repro.extensions.ohuchi_kaji import solve_ohuchi_kaji

TIGHT = StoppingRule(eps=1e-9, max_iterations=20_000)


class TestIntervals:
    def _base(self, rng, m=5, n=6):
        x0 = rng.uniform(1.0, 30.0, (m, n))
        gamma = rng.uniform(0.5, 3.0, (m, n))
        return x0, gamma

    def test_wide_intervals_leave_base_unchanged(self, rng):
        x0, gamma = self._base(rng)
        p = IntervalTotalsProblem(
            x0=x0, gamma=gamma,
            s_lo=0.5 * x0.sum(axis=1), s_hi=2.0 * x0.sum(axis=1),
            d_lo=0.5 * x0.sum(axis=0), d_hi=2.0 * x0.sum(axis=0),
        )
        r = solve_intervals(p, stop=TIGHT)
        np.testing.assert_allclose(r.x, x0, atol=1e-9 * x0.max())
        assert r.objective < 1e-12 * x0.max() ** 2

    def test_degenerate_intervals_equal_fixed_solution(self, rng):
        problem = random_fixed_problem(rng, 5, 5, total_factor_low=0.4)
        p = IntervalTotalsProblem(
            x0=problem.x0, gamma=problem.gamma,
            s_lo=problem.s0, s_hi=problem.s0,
            d_lo=problem.d0, d_hi=problem.d0,
        )
        ri = solve_intervals(p, stop=TIGHT)
        rf = solve_fixed(problem, stop=TIGHT)
        np.testing.assert_allclose(ri.x, rf.x, atol=1e-7 * problem.s0.max())

    def test_solution_feasible_for_intervals(self, rng):
        x0, gamma = self._base(rng)
        p = IntervalTotalsProblem(
            x0=x0, gamma=gamma,
            s_lo=1.2 * x0.sum(axis=1), s_hi=1.5 * x0.sum(axis=1),
            d_lo=0.9 * x0.sum(axis=0), d_hi=1.6 * x0.sum(axis=0),
        )
        r = solve_intervals(p, stop=TIGHT)
        assert r.converged
        assert p.total_violation(r.x) < 1e-6 * x0.sum()

    def test_interval_objective_no_worse_than_fixed_endpoints(self, rng):
        """Widening the feasible set can only lower the optimum."""
        problem = random_fixed_problem(rng, 5, 5, total_factor_low=0.4)
        widened = IntervalTotalsProblem(
            x0=problem.x0, gamma=problem.gamma,
            s_lo=0.9 * problem.s0, s_hi=1.1 * problem.s0,
            d_lo=0.9 * problem.d0, d_hi=1.1 * problem.d0,
        )
        ri = solve_intervals(widened, stop=TIGHT)
        rf = solve_fixed(problem, stop=TIGHT)
        assert ri.objective <= rf.objective + 1e-6 * rf.objective

    def test_incompatible_intervals_rejected(self):
        with pytest.raises(ValueError, match="incompatible"):
            IntervalTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s_lo=np.array([10.0, 10.0]), s_hi=np.array([11.0, 11.0]),
                d_lo=np.array([1.0, 1.0]), d_hi=np.array([2.0, 2.0]),
            )

    def test_crossed_interval_rejected(self):
        with pytest.raises(ValueError, match="lower ends"):
            IntervalTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s_lo=np.array([3.0, 1.0]), s_hi=np.array([2.0, 2.0]),
                d_lo=np.array([1.0, 1.0]), d_hi=np.array([2.0, 2.0]),
            )


class TestEntropy:
    def test_fixed_totals_entropy_is_ras(self, rng):
        """The headline equivalence: entropy SEA's iterates are RAS's."""
        x0 = rng.uniform(1.0, 30.0, (6, 5))
        s0 = x0.sum(axis=1) * rng.uniform(0.7, 1.4, 6)
        d0 = x0.sum(axis=0)
        d0 *= s0.sum() / d0.sum()
        p = EntropyProblem(x0=x0, s0=s0, d0=d0)
        r = solve_entropy(
            p, stop=StoppingRule(eps=1e-11, criterion="imbalance",
                                 max_iterations=50_000)
        )
        ras = solve_ras(x0, s0, d0, eps=1e-13, max_iterations=50_000)
        np.testing.assert_allclose(r.x, ras.x, rtol=1e-6)
        # Multiplier exponentials are the RAS scaling factors (up to the
        # usual constant shift between the factor families).
        ratio = np.exp(r.lam) / ras.r
        np.testing.assert_allclose(ratio, ratio[0], rtol=1e-5)

    def test_elastic_entropy_estimates_totals(self, rng):
        x0 = rng.uniform(1.0, 30.0, (5, 5))
        p = EntropyProblem(
            x0=x0, s0=1.3 * x0.sum(axis=1), d0=0.8 * x0.sum(axis=0),
            alpha=np.ones(5), beta=np.ones(5),
        )
        r = solve_entropy(p)
        assert r.converged
        scale = p.s0.max()
        assert np.max(np.abs(r.x.sum(axis=1) - r.s)) < 1e-3 * scale
        assert np.max(np.abs(r.x.sum(axis=0) - r.d)) < 1e-3 * scale
        # Estimated totals compromise between the priors.
        assert r.s.sum() == pytest.approx(r.d.sum(), rel=1e-3)

    def test_stronger_penalty_pins_totals_harder(self, rng):
        x0 = rng.uniform(1.0, 30.0, (4, 4))
        s0 = 1.5 * x0.sum(axis=1)
        d0 = 0.8 * x0.sum(axis=0)
        soft = solve_entropy(EntropyProblem(
            x0=x0, s0=s0, d0=d0, alpha=np.full(4, 0.1), beta=np.full(4, 0.1)))
        hard = solve_entropy(EntropyProblem(
            x0=x0, s0=s0, d0=d0, alpha=np.full(4, 100.0), beta=np.full(4, 100.0)))
        assert np.abs(hard.s - s0).sum() < np.abs(soft.s - s0).sum()

    def test_objective_zero_at_base(self, rng):
        x0 = rng.uniform(1.0, 10.0, (3, 3))
        p = EntropyProblem(x0=x0, s0=x0.sum(axis=1), d0=x0.sum(axis=0))
        assert p.objective(x0) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="nonnegative"):
            EntropyProblem(x0=-np.ones((2, 2)), s0=np.ones(2), d0=np.ones(2))
        with pytest.raises(ValueError, match="strictly positive"):
            EntropyProblem(x0=np.ones((2, 2)), s0=np.zeros(2), d0=np.ones(2))
        with pytest.raises(ValueError, match="both"):
            EntropyProblem(x0=np.ones((2, 2)), s0=np.ones(2), d0=np.ones(2),
                           alpha=np.ones(2))
        with pytest.raises(ValueError, match="balanced"):
            EntropyProblem(x0=np.ones((2, 2)), s0=np.ones(2), d0=2 * np.ones(2))


class TestOhuchiKaji:
    def test_reaches_sea_optimum(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.4)
        ok = solve_ohuchi_kaji(problem, stop=TIGHT)
        sea = solve_fixed(problem, stop=TIGHT)
        assert ok.converged
        assert ok.objective == pytest.approx(sea.objective, rel=1e-6)

    def test_feasible_and_nonnegative(self, rng):
        problem = random_fixed_problem(rng, 7, 5, total_factor_low=0.4)
        ok = solve_ohuchi_kaji(problem, stop=TIGHT)
        assert np.all(ok.x >= 0)
        scale = problem.s0.max()
        assert np.max(np.abs(ok.x.sum(axis=0) - problem.d0)) < 1e-6 * scale

    def test_all_work_is_serial(self, rng):
        """The architectural contrast with SEA: coordinatewise updates
        are sequential, so the cost model sees no parallel phase."""
        problem = random_fixed_problem(rng, 5, 5)
        ok = solve_ohuchi_kaji(problem)
        assert ok.counts.parallel_ops == 0.0
        assert ok.counts.serial_ops > 0.0

    def test_respects_mask(self, rng):
        problem = random_fixed_problem(rng, 6, 6, density=0.5)
        ok = solve_ohuchi_kaji(problem, stop=TIGHT)
        assert np.all(ok.x[~problem.mask] == 0.0)
