"""Tests for the vectorized exact-equilibration kernel.

The key property: the vectorized solver agrees with the scalar
reference on every row, for fixed and elastic subproblems, with and
without inert (masked) cells.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equilibration.exact import (
    equilibrate_rows,
    recover_flows,
    solve_piecewise_linear,
)
from repro.equilibration.scalar import (
    evaluate_piecewise_linear,
    solve_piecewise_linear_scalar,
)


def _random_instance(rng, m, n, elastic, density=1.0):
    B = rng.uniform(-50.0, 50.0, (m, n))
    SL = rng.uniform(0.01, 20.0, (m, n))
    inert = rng.random((m, n)) >= density
    SL[inert] = 0.0
    # Keep at least one active cell per row in the fixed case.
    for i in np.flatnonzero((SL > 0).sum(axis=1) == 0):
        SL[i, rng.integers(n)] = 1.0
    if elastic:
        a = rng.uniform(0.01, 10.0, m)
        c = rng.uniform(-50.0, 50.0, m)
        target = rng.uniform(-100.0, 100.0, m)
    else:
        a = np.zeros(m)
        c = np.zeros(m)
        target = rng.uniform(0.0, 200.0, m)
    return B, SL, target, a, c


class TestAgainstScalar:
    @pytest.mark.parametrize("elastic", [False, True])
    @pytest.mark.parametrize("density", [1.0, 0.6])
    def test_matches_scalar_reference(self, rng, elastic, density):
        B, SL, target, a, c = _random_instance(rng, 40, 17, elastic, density)
        lam = solve_piecewise_linear(B, SL, target, a=a, c=c)
        for i in range(40):
            ref = solve_piecewise_linear_scalar(
                B[i], SL[i], target[i], a=a[i], c=c[i]
            )
            g_vec = evaluate_piecewise_linear(lam[i], B[i], SL[i], a[i], c[i])
            g_ref = evaluate_piecewise_linear(ref, B[i], SL[i], a[i], c[i])
            # lam itself may differ on flat segments; the g-values must agree.
            assert g_vec == pytest.approx(g_ref, abs=1e-7 * max(abs(target[i]), 1.0))

    def test_single_row_single_cell(self):
        lam = solve_piecewise_linear(
            np.array([[2.0]]), np.array([[4.0]]), np.array([8.0])
        )
        # g = 4 (lam - 2) = 8 -> lam = 4.
        assert lam[0] == pytest.approx(4.0)


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal-shape"):
            solve_piecewise_linear(np.zeros((2, 3)), np.zeros((3, 2)), np.zeros(2))

    def test_negative_slopes(self):
        with pytest.raises(ValueError, match="nonnegative"):
            solve_piecewise_linear(
                np.zeros((1, 2)), np.array([[1.0, -1.0]]), np.zeros(1)
            )

    def test_negative_elastic_slope(self):
        with pytest.raises(ValueError, match="elastic"):
            solve_piecewise_linear(
                np.zeros((1, 2)), np.ones((1, 2)), np.zeros(1), a=np.array([-1.0])
            )

    def test_fixed_negative_target_infeasible(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_piecewise_linear(
                np.zeros((1, 2)), np.ones((1, 2)), np.array([-5.0])
            )

    def test_fixed_empty_row_positive_target(self):
        with pytest.raises(ValueError, match="no active cell"):
            solve_piecewise_linear(
                np.zeros((1, 2)), np.zeros((1, 2)), np.array([5.0])
            )

    def test_fixed_empty_row_zero_target_ok(self):
        lam = solve_piecewise_linear(
            np.zeros((1, 2)), np.zeros((1, 2)), np.array([0.0])
        )
        assert np.isfinite(lam[0])

    def test_all_invalid_row_raises_instead_of_nan(self):
        """Regression: a nan target (e.g. a diverged upstream multiplier)
        made every candidate non-finite; the tie fallback's argmin then
        picked index 0 and silently returned nan.  Now it names the row."""
        with pytest.raises(ValueError, match="subproblem 1"):
            solve_piecewise_linear(
                np.zeros((2, 2)), np.ones((2, 2)), np.array([1.0, np.nan])
            )

    def test_nan_breakpoints_raise(self):
        with pytest.raises(ValueError, match="no finite candidate"):
            solve_piecewise_linear(
                np.full((1, 2), np.nan), np.ones((1, 2)), np.array([1.0])
            )


class TestRecoverFlows:
    def test_flows_nonnegative_and_match_formula(self, rng):
        B, SL, target, a, c = _random_instance(rng, 10, 8, elastic=False)
        lam = solve_piecewise_linear(B, SL, target)
        x = recover_flows(lam, B, SL)
        assert np.all(x >= 0.0)
        np.testing.assert_allclose(
            x, SL * np.maximum(lam[:, None] - B, 0.0)
        )

    def test_fixed_rows_meet_targets(self, rng):
        B, SL, target, a, c = _random_instance(rng, 25, 12, elastic=False)
        lam = solve_piecewise_linear(B, SL, target)
        x = recover_flows(lam, B, SL)
        np.testing.assert_allclose(x.sum(axis=1), target, rtol=1e-10, atol=1e-8)


class TestEquilibrateRows:
    def test_row_constraints_hold(self, rng):
        m, n = 12, 9
        x0 = rng.uniform(0.1, 50.0, (m, n))
        gamma = rng.uniform(0.5, 4.0, (m, n))
        mu = rng.uniform(-5.0, 5.0, n)
        s0 = x0.sum(axis=1) * rng.uniform(0.5, 1.5, m)
        lam, X = equilibrate_rows(x0, gamma, mu, target=s0)
        np.testing.assert_allclose(X.sum(axis=1), s0, rtol=1e-10, atol=1e-8)
        assert np.all(X >= 0.0)

    def test_masked_cells_stay_zero(self, rng):
        m, n = 8, 8
        x0 = rng.uniform(0.1, 50.0, (m, n))
        gamma = rng.uniform(0.5, 4.0, (m, n))
        mask = rng.random((m, n)) < 0.7
        mask[:, 0] = True  # keep every row feasible
        s0 = np.where(mask, x0, 0.0).sum(axis=1)
        lam, X = equilibrate_rows(
            x0, gamma, np.zeros(n), target=s0, mask=mask
        )
        assert np.all(X[~mask] == 0.0)

    def test_kkt_of_single_row_subproblem(self, rng):
        """The kernel's lam is the Lagrange multiplier: on the solution,
        2 gamma (x - x0) - mu_j - lam  is 0 where x > 0, >= 0 at x = 0."""
        m, n = 6, 10
        x0 = rng.uniform(0.1, 50.0, (m, n))
        gamma = rng.uniform(0.5, 4.0, (m, n))
        mu = rng.uniform(-20.0, 20.0, n)
        s0 = x0.sum(axis=1) * 0.5  # force some cells to the bound
        lam, X = equilibrate_rows(x0, gamma, mu, target=s0)
        grad = 2.0 * gamma * (X - x0) - mu[None, :] - lam[:, None]
        positive = X > 1e-10
        assert np.max(np.abs(grad[positive])) < 1e-7
        assert np.min(grad[~positive]) > -1e-7

    def test_nonpositive_gamma_rejected(self, rng):
        x0 = np.ones((2, 2))
        gamma = np.array([[1.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError, match="strictly positive"):
            equilibrate_rows(x0, gamma, np.zeros(2), target=np.ones(2))


@settings(max_examples=100, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    m=st.integers(1, 15),
    n=st.integers(1, 15),
    elastic=st.booleans(),
)
def test_vectorized_roots_property(seed, m, n, elastic):
    """Every row's lam is an exact root of its piecewise-linear equation."""
    rng = np.random.default_rng(seed)
    B, SL, target, a, c = _random_instance(rng, m, n, elastic, density=0.8)
    lam = solve_piecewise_linear(B, SL, target, a=a, c=c)
    for i in range(m):
        g = evaluate_piecewise_linear(lam[i], B[i], SL[i], a[i], c[i])
        scale = max(abs(target[i]), float(np.sum(SL[i]) * 50.0), 1.0)
        assert abs(g - target[i]) < 1e-7 * scale


class TestWorkspaceBitIdentity:
    """Workspace-driven sweeps are bit-identical to the cold kernel.

    The permutation cache relies on stable-sort uniqueness: a cached
    order is accepted only if it is exactly the order a fresh stable
    argsort would produce, so every dual trajectory — and therefore
    every lam/mu/x — must match the cold path to the last bit.  Note
    the comparisons always use *matched* ``mu0``: a warm-started solve
    (different ``mu0``) legitimately follows a different trajectory.
    """

    @staticmethod
    def _cold_kernel(b, s, t, a=None, c=None):
        # No workspace kwarg -> drivers skip workspaces entirely.
        return solve_piecewise_linear(b, s, t, a=a, c=c)

    def _assert_same(self, cold, warm):
        np.testing.assert_array_equal(cold.lam, warm.lam)
        np.testing.assert_array_equal(cold.mu, warm.mu)
        np.testing.assert_array_equal(cold.x, warm.x)
        assert cold.iterations == warm.iterations
        assert cold.converged == warm.converged

    @pytest.mark.parametrize("kind", ["fixed", "elastic", "sam"])
    def test_solo_drivers(self, rng, kind):
        from repro.core.convergence import StoppingRule
        from repro.core.sea import solve_elastic, solve_fixed, solve_sam
        from repro.equilibration.workspace import SweepWorkspace
        from tests.conftest import (
            random_elastic_problem,
            random_fixed_problem,
            random_sam_problem,
        )

        if kind == "fixed":
            problem, solver = random_fixed_problem(rng, 19, 13), solve_fixed
        elif kind == "elastic":
            problem, solver = random_elastic_problem(rng, 19, 13), solve_elastic
        else:
            problem, solver = random_sam_problem(rng, 17), solve_sam
        stop = StoppingRule(eps=1e-6, criterion="delta-x", max_iterations=500)

        cold = solver(problem, stop=stop, kernel=self._cold_kernel)
        m, n = problem.shape
        ws = (SweepWorkspace(m, n), SweepWorkspace(n, m))
        warm = solver(problem, stop=stop, workspaces=ws)
        self._assert_same(cold, warm)
        if warm.iterations > 1:
            assert ws[0].rows_reused > 0  # the cache actually engaged

    @pytest.mark.parametrize("kind", ["fixed", "elastic", "sam"])
    def test_solo_drivers_matched_mu0(self, rng, kind):
        """Warm-start path: same cached mu0 on both sides stays exact."""
        from repro.core.convergence import StoppingRule
        from repro.core.sea import solve_elastic, solve_fixed, solve_sam
        from tests.conftest import (
            random_elastic_problem,
            random_fixed_problem,
            random_sam_problem,
        )

        if kind == "fixed":
            problem, solver = random_fixed_problem(rng, 11, 9), solve_fixed
        elif kind == "elastic":
            problem, solver = random_elastic_problem(rng, 11, 9), solve_elastic
        else:
            problem, solver = random_sam_problem(rng, 10), solve_sam
        stop = StoppingRule(eps=1e-6, criterion="delta-x", max_iterations=500)
        mu0 = solver(problem, stop=stop).mu  # a realistic cached dual

        cold = solver(problem, stop=stop, mu0=mu0, kernel=self._cold_kernel)
        warm = solver(problem, stop=stop, mu0=mu0)
        self._assert_same(cold, warm)

    def test_sparse_driver_cross_solve_reuse(self, rng):
        """A retained sparse pair stays exact across repeated solves."""
        from repro.core.convergence import StoppingRule
        from repro.sparse.kernel import SparseSweepWorkspace
        from repro.sparse.sea import solve_fixed_sparse
        from tests.conftest import random_fixed_problem

        problem = random_fixed_problem(rng, 15, 12, density=0.5)
        stop = StoppingRule(eps=1e-6, criterion="delta-x", max_iterations=500)
        fresh = solve_fixed_sparse(problem, stop=stop)

        nnz = int(problem.mask.sum())
        pair = (SparseSweepWorkspace(nnz, 15), SparseSweepWorkspace(nnz, 12))
        solve_fixed_sparse(problem, stop=stop, workspaces=pair)
        before = pair[0].counters()
        again = solve_fixed_sparse(problem, stop=stop, workspaces=pair)
        self._assert_same(fresh, again)
        if again.iterations > 1:
            assert pair[0].counters()[1] > before[1]

    def test_solve_batch(self, rng):
        from repro.core.convergence import StoppingRule
        from repro.equilibration.workspace import SweepWorkspace
        from repro.service.batching import solve_batch
        from tests.conftest import random_fixed_problem

        k, m, n = 3, 9, 7
        problems = [random_fixed_problem(rng, m, n) for _ in range(k)]
        stop = StoppingRule(eps=1e-6, criterion="delta-x", max_iterations=500)

        cold = solve_batch(problems, stop=stop, kernel=self._cold_kernel)
        ws = (SweepWorkspace(k * m, n), SweepWorkspace(k * n, m))
        warm = solve_batch(problems, stop=stop, workspaces=ws)
        for c, w in zip(cold, warm):
            self._assert_same(c, w)
