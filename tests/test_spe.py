"""Spatial price equilibrium model, isomorphism, equilibrium conditions."""

import numpy as np
import pytest

from repro.core.convergence import StoppingRule
from repro.datasets.spe_data import spe_instance
from repro.spe.equilibrium import (
    equilibrium_violations,
    max_equilibrium_violation,
)
from repro.spe.isomorphism import spe_from_elastic, spe_to_elastic
from repro.spe.model import SpatialPriceProblem, solve_spe

TIGHT = StoppingRule(eps=1e-8, criterion="delta-x", max_iterations=50_000)


def _tiny_spe(rng, m=3, n=4):
    return SpatialPriceProblem(
        p=rng.uniform(5.0, 10.0, m),
        r=rng.uniform(0.5, 2.0, m),
        q=rng.uniform(50.0, 80.0, n),
        w=rng.uniform(0.5, 2.0, n),
        h=rng.uniform(1.0, 10.0, (m, n)),
        g=rng.uniform(0.2, 1.0, (m, n)),
    )


class TestModelValidation:
    def test_shape_checks(self, rng):
        with pytest.raises(ValueError, match="p and r"):
            SpatialPriceProblem(
                p=np.ones(2), r=np.ones(3), q=np.ones(2), w=np.ones(2),
                h=np.ones((3, 2)), g=np.ones((3, 2)),
            )

    def test_positive_slopes_required(self, rng):
        with pytest.raises(ValueError, match="strictly positive"):
            SpatialPriceProblem(
                p=np.ones(2), r=np.zeros(2), q=np.ones(2), w=np.ones(2),
                h=np.ones((2, 2)), g=np.ones((2, 2)),
            )

    def test_price_functions(self, rng):
        spe = _tiny_spe(rng)
        s = np.ones(3)
        np.testing.assert_allclose(spe.supply_price(s), spe.p + spe.r)


class TestIsomorphism:
    def test_round_trip(self, rng):
        spe = _tiny_spe(rng)
        back = spe_from_elastic(spe_to_elastic(spe))
        np.testing.assert_allclose(back.p, spe.p, rtol=1e-12)
        np.testing.assert_allclose(back.q, spe.q, rtol=1e-12)
        np.testing.assert_allclose(back.h, spe.h, rtol=1e-12)
        np.testing.assert_allclose(back.g, spe.g, rtol=1e-12)

    def test_objectives_differ_by_constant(self, rng):
        """The elastic quadratic objective equals the SPE net-social-payoff
        objective up to an additive constant (completing the square)."""
        spe = _tiny_spe(rng)
        elastic = spe_to_elastic(spe)
        rng2 = np.random.default_rng(7)
        diffs = []
        for _ in range(5):
            x = rng2.uniform(0.0, 10.0, spe.shape)
            s = x.sum(axis=1)
            d = x.sum(axis=0)
            diffs.append(
                elastic.objective(x, s, d)
                - spe.net_social_payoff_objective(x, s, d)
            )
        assert np.ptp(diffs) < 1e-8 * max(abs(diffs[0]), 1.0)

    def test_masked_elastic_rejected(self, rng):
        elastic = spe_to_elastic(_tiny_spe(rng))
        masked = type(elastic)(
            x0=elastic.x0, gamma=elastic.gamma, s0=elastic.s0, d0=elastic.d0,
            alpha=elastic.alpha, beta=elastic.beta,
            mask=np.zeros(elastic.shape, bool) | (elastic.x0 < 1e18),
        )
        masked2 = type(elastic)(
            x0=elastic.x0, gamma=elastic.gamma, s0=elastic.s0, d0=elastic.d0,
            alpha=elastic.alpha, beta=elastic.beta,
            mask=np.eye(elastic.shape[0], elastic.shape[1], dtype=bool),
        )
        with pytest.raises(ValueError, match="all cells active"):
            spe_from_elastic(masked2)


class TestEquilibrium:
    def test_solution_satisfies_equilibrium_conditions(self, rng):
        spe = _tiny_spe(rng)
        result = solve_spe(spe, stop=TIGHT)
        assert result.converged
        v = equilibrium_violations(spe, result.x, result.s, result.d)
        price_scale = float(np.max(spe.q))
        assert v["margin_used"] < 1e-6 * price_scale
        assert v["margin_unused"] < 1e-6 * price_scale
        assert v["demand_balance"] < 1e-6 * price_scale
        assert v["supply_balance"] < 1e-4 * price_scale

    def test_unused_routes_are_unprofitable(self, rng):
        spe = _tiny_spe(rng)
        result = solve_spe(spe, stop=TIGHT)
        pi = spe.supply_price(result.s)[:, None]
        rho = spe.demand_price(result.d)[None, :]
        cost = spe.transaction_cost(result.x)
        unused = result.x <= 1e-9
        if unused.any():
            assert np.all((pi + cost - rho)[unused] > -1e-6 * np.max(spe.q))

    def test_generated_instance_properties(self):
        spe = spe_instance(20)
        result = solve_spe(spe, stop=StoppingRule(eps=1e-6, criterion="delta-x",
                                                  max_iterations=50_000))
        assert result.converged
        assert max_equilibrium_violation(spe, result.x, result.s, result.d) < 1e-2
        # Market quantities are positive: trade happens.
        assert result.s.sum() > 0
        assert (result.x > 1e-6).any()

    def test_monopoly_shutdown(self):
        """If demand intercepts sit below supply intercepts plus costs,
        no trade occurs and all quantities collapse to zero."""
        m = n = 3
        spe = SpatialPriceProblem(
            p=np.full(m, 100.0), r=np.ones(m),
            q=np.full(n, 10.0), w=np.ones(n),
            h=np.full((m, n), 5.0), g=np.ones((m, n)),
        )
        result = solve_spe(spe, stop=TIGHT)
        assert np.all(result.x < 1e-8)
        # With no trade, s and d rest at (clipped) autarky: s = -p/r < 0
        # is infeasible, so the constraint pins s to the zero flows.
        np.testing.assert_allclose(result.s, 0.0, atol=1e-8)
