"""Chaos tests: the solve service under injected faults.

The headline guarantee of the fault-tolerance layer is that chaos
changes *availability metrics*, never *answers*: with a seeded
:class:`~repro.service.faults.FaultPlan` raising/killing in >=20% of
dispatches, every response stays bit-identical to the fault-free serial
solve, deadlines bound wall clock, and ``ServiceStats`` accounts for
every injected fault.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor

import numpy as np
import pytest
from conftest import random_fixed_problem

import repro.parallel.executor as executor_mod
from repro.core.api import solve
from repro.core.problems import FixedTotalsProblem
from repro.core.sea import solve_fixed
from repro.errors import DeadlineExceededError, WorkerCrashError
from repro.parallel.executor import ParallelKernel
from repro.service import FaultPlan, FaultyKernel, SolveService


def infeasible_fixed() -> FixedTotalsProblem:
    """Positive row total with every cell of that row masked out."""
    mask = np.ones((3, 3), dtype=bool)
    mask[0] = False
    mask[:, 0] = True  # keep every column supported
    mask[0, 0] = False
    mask[1, 0] = True
    return FixedTotalsProblem(
        x0=np.ones((3, 3)),
        gamma=np.ones((3, 3)),
        s0=np.array([5.0, 3.0, 3.0]),
        d0=np.array([4.0, 3.5, 3.5]),
        mask=mask,
    )


def chaos_service(plan: FaultPlan, backend: str = "serial", workers: int = 1,
                  **kw) -> SolveService:
    kernel = FaultyKernel(ParallelKernel(workers=workers, backend=backend),
                          plan)
    kw.setdefault("warm_start", False)  # warm starts change the dual path
    return SolveService(kernel=kernel, **kw)


class TestFaultPlan:
    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="raise_fraction"):
            FaultPlan(raise_fraction=1.5)
        with pytest.raises(ValueError, match="delay_s"):
            FaultPlan(delay_s=-1.0)
        with pytest.raises(ValueError, match="max_faults"):
            FaultPlan(max_faults=-1)

    def test_seeded_schedule_is_deterministic(self):
        def draws(seed):
            fk = FaultyKernel(ParallelKernel(workers=1),
                              FaultPlan(seed=seed, raise_fraction=0.3,
                                        delay_fraction=0.2, delay_s=0.0))
            return [fk._draw() for _ in range(50)]

        assert draws(11) == draws(11)
        assert draws(11) != draws(12)

    def test_max_faults_caps_injection(self):
        fk = FaultyKernel(ParallelKernel(workers=1),
                          FaultPlan(seed=0, raise_fraction=1.0, max_faults=3))
        modes = [fk._draw() for _ in range(10)]
        # _draw does not itself count; simulate what __call__ records
        fired = 0
        fk2 = FaultyKernel(ParallelKernel(workers=1),
                           FaultPlan(seed=0, raise_fraction=1.0, max_faults=3))
        for _ in range(10):
            try:
                fk2(np.zeros((1, 1)), np.ones((1, 1)), np.zeros(1))
            except Exception:
                fired += 1
        assert modes[:3] == ["raise"] * 3
        assert fired == 3 and fk2.faults_injected == 3


class TestServiceRetries:
    def test_injected_raise_is_retried_to_identical_result(self, rng):
        problem = random_fixed_problem(rng, 4, 4)
        baseline = solve(problem)
        plan = FaultPlan(seed=0, raise_fraction=1.0, max_faults=2)
        with chaos_service(plan, default_retries=3) as svc:
            resp = svc.solve(problem)
        assert resp.ok and resp.retries == 2
        np.testing.assert_array_equal(resp.result.x, baseline.x)
        stats = svc.stats()
        assert stats.retries == 2 and stats.errors == 0

    def test_retries_exhausted_reports_worker_crash(self, rng):
        plan = FaultPlan(seed=0, raise_fraction=1.0)  # unbounded chaos
        with chaos_service(plan, default_retries=2) as svc:
            resp = svc.solve(random_fixed_problem(rng, 4, 4))
        assert not resp.ok
        assert resp.error_kind == "worker-crash" and resp.retries == 2
        stats = svc.stats()
        assert stats.retries == 2
        assert stats.errors_by_kind == {"worker-crash": 1}

    def test_deterministic_error_is_never_retried(self):
        plan = FaultPlan(seed=0)  # no faults: the problem itself is bad
        with chaos_service(plan, default_retries=5) as svc:
            resp = svc.solve(infeasible_fixed())
        assert not resp.ok and resp.error_kind == "infeasible"
        assert resp.retries == 0 and svc.stats().retries == 0

    def test_corrupted_dispatch_detected_and_resolved(self, rng):
        problem = random_fixed_problem(rng, 4, 4)
        baseline = solve(problem)
        plan = FaultPlan(seed=0, corrupt_fraction=1.0, max_faults=1)
        with chaos_service(plan, default_retries=3) as svc:
            resp = svc.solve(problem)
        assert resp.ok and resp.retries == 1
        np.testing.assert_array_equal(resp.result.x, baseline.x)
        assert svc.kernel.injected["corrupt"] == 1


class TestDeadlines:
    def test_delay_fault_trips_deadline(self, rng):
        plan = FaultPlan(seed=0, delay_fraction=1.0, delay_s=0.05)
        with chaos_service(plan, default_deadline_s=0.04) as svc:
            t0 = time.monotonic()
            resp = svc.solve(random_fixed_problem(rng, 4, 4))
            elapsed = time.monotonic() - t0
        assert not resp.ok and resp.error_kind == "deadline-exceeded"
        assert resp.retries == 0  # deadline errors fail fast
        assert elapsed < 2.0  # nowhere near a full delayed solve
        assert svc.stats().deadline_exceeded >= 1

    def test_per_request_deadline_overrides_default(self, rng):
        plan = FaultPlan(seed=0, delay_fraction=1.0, delay_s=0.05)
        with chaos_service(plan, default_deadline_s=None) as svc:
            resp = svc.solve(random_fixed_problem(rng, 4, 4),
                             deadline_s=0.04)
            clean = svc.solve(random_fixed_problem(rng, 4, 4))
        assert resp.error_kind == "deadline-exceeded"
        # no default deadline: the delayed solve still completes
        assert clean.ok

    def test_pooled_dispatch_timeout_abandons_stragglers(self):
        kernel = ParallelKernel(workers=2, backend="thread")
        m = 6
        breakpoints = np.tile(np.linspace(-1.0, 1.0, 4), (m, 1))
        slopes = np.tile(np.array([0.5, 1.0, 2.0, 1.5]), (m, 1))
        target = np.full(m, 1.0)
        # sanity: generous budget succeeds
        out = kernel(breakpoints, slopes, target, timeout=30.0)
        assert np.all(np.isfinite(out))
        with pytest.raises(DeadlineExceededError):
            kernel(breakpoints, slopes, target, timeout=1e-9)
        # the abandoned pool is replaced transparently
        assert kernel(breakpoints, slopes, target, timeout=30.0).shape == (m,)
        kernel.close()


class TestCircuitBreaker:
    def test_breaker_opens_rejects_and_closes(self, rng):
        with SolveService(breaker_threshold=2, breaker_cooldown=2,
                          warm_start=False) as svc:
            bad = infeasible_fixed()
            good = random_fixed_problem(rng, 3, 3)  # same (kind, shape) group
            r1 = svc.solve(bad)
            r2 = svc.solve(bad)      # second consecutive failure: trips
            r3 = svc.solve(bad)      # open: rejected without solving
            r4 = svc.solve(bad)      # still open: rejected
            r5 = svc.solve(good)     # cooldown over: half-open trial
            r6 = svc.solve(good)     # closed again
        assert [r.error_kind for r in (r1, r2, r3, r4)] == [
            "infeasible", "infeasible", "circuit-open", "circuit-open",
        ]
        assert r5.ok and r6.ok
        stats = svc.stats()
        assert stats.breaker_trips == 1
        assert stats.breaker_rejections == 2
        assert stats.errors_by_kind["circuit-open"] == 2

    def test_half_open_failure_retrips(self):
        with SolveService(breaker_threshold=2, breaker_cooldown=2,
                          warm_start=False) as svc:
            bad = infeasible_fixed()
            svc.solve(bad)
            svc.solve(bad)           # trips
            svc.solve(bad)           # rejected
            svc.solve(bad)           # rejected; cooldown elapses
            r5 = svc.solve(bad)      # half-open trial fails: re-trips
            r6 = svc.solve(bad)      # open again
        assert r5.error_kind == "infeasible"
        assert r6.error_kind == "circuit-open"
        assert svc.stats().breaker_trips == 2

    def test_unrelated_group_unaffected_by_open_breaker(self, rng):
        with SolveService(breaker_threshold=1, breaker_cooldown=50,
                          warm_start=False) as svc:
            svc.solve(infeasible_fixed())               # trips (3, 3) fixed
            other = svc.solve(random_fixed_problem(rng, 4, 4))
            same = svc.solve(random_fixed_problem(rng, 3, 3))
        assert other.ok  # different shape: different breaker
        assert same.error_kind == "circuit-open"


class _BrokenPool:
    """Executor stand-in whose submissions always fail."""

    def __init__(self, max_workers=None):
        pass

    def submit(self, fn, *args, **kwargs):
        raise BrokenExecutor("injected: pool refuses all work")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


class TestDegradationLadder:
    def test_thread_backend_degrades_to_serial(self, rng, monkeypatch):
        monkeypatch.setitem(executor_mod._POOL_TYPES, "thread", _BrokenPool)
        problem = random_fixed_problem(rng, 6, 6)
        baseline = solve_fixed(problem)
        kernel = ParallelKernel(workers=2, backend="thread",
                                max_retries=1, retry_backoff_s=0.001)
        result = solve_fixed(problem, kernel=kernel)
        np.testing.assert_array_equal(result.x, baseline.x)
        assert kernel.effective_backend == "serial"
        assert kernel.degraded_dispatches > 0
        assert kernel.worker_crashes == 2  # max_retries + 1 on the thread rung
        assert kernel.pool_rebuilds == 1
        kernel.reset()
        assert kernel.effective_backend == "thread"

    def test_all_rungs_broken_raises_worker_crash(self, monkeypatch):
        monkeypatch.setitem(executor_mod._POOL_TYPES, "thread", _BrokenPool)
        monkeypatch.setitem(executor_mod._LADDERS, "thread", ("thread",))
        kernel = ParallelKernel(workers=2, backend="thread",
                                max_retries=1, retry_backoff_s=0.001)
        m = 4
        breakpoints = np.tile(np.linspace(-1.0, 1.0, 4), (m, 1))
        slopes = np.tile(np.array([0.5, 1.0, 2.0, 1.5]), (m, 1))
        with pytest.raises(WorkerCrashError):
            kernel(breakpoints, slopes, np.full(m, 1.0))

    def test_degraded_kernel_feeds_service_stats(self, rng, monkeypatch):
        monkeypatch.setitem(executor_mod._POOL_TYPES, "thread", _BrokenPool)
        kernel = ParallelKernel(workers=2, backend="thread",
                                max_retries=0, retry_backoff_s=0.001)
        with SolveService(kernel=kernel, warm_start=False) as svc:
            resp = svc.solve(random_fixed_problem(rng, 6, 6))
        assert resp.ok
        stats = svc.stats()
        assert stats.worker_crashes >= 1
        assert stats.degraded_dispatches >= 1


class TestKernelLifecycle:
    def test_healthy_probe(self):
        serial = ParallelKernel(workers=1, backend="serial")
        assert serial.healthy()
        with ParallelKernel(workers=2, backend="thread") as kernel:
            assert kernel.healthy()

    def test_healthy_false_on_broken_pool(self, monkeypatch):
        monkeypatch.setitem(executor_mod._POOL_TYPES, "thread", _BrokenPool)
        kernel = ParallelKernel(workers=2, backend="thread")
        assert not kernel.healthy()

    def test_close_is_reusable(self, rng):
        problem = random_fixed_problem(rng, 6, 6)
        baseline = solve_fixed(problem)
        kernel = ParallelKernel(workers=2, backend="thread")
        first = solve_fixed(problem, kernel=kernel)
        kernel.close()
        second = solve_fixed(problem, kernel=kernel)  # pool re-forks lazily
        kernel.close()
        np.testing.assert_array_equal(first.x, baseline.x)
        np.testing.assert_array_equal(second.x, baseline.x)


@pytest.mark.slow
class TestProcessChaosAcceptance:
    """The headline acceptance run: a seeded plan killing/raising in
    >=20% of dispatches on the ``process`` backend, every response
    bit-identical to the fault-free serial solve."""

    def test_worker_kill_mid_batch_recovers_bit_identical(self, rng):
        problems = [random_fixed_problem(rng, 4, 4) for _ in range(3)]
        baselines = [solve(p) for p in problems]
        plan = FaultPlan(seed=5, kill_fraction=1.0, max_faults=1)
        with chaos_service(plan, backend="process", workers=2,
                           default_retries=4) as svc:
            for p in problems:
                svc.submit(p)
            responses = svc.drain()
        assert all(r.ok for r in responses)
        for resp, base in zip(responses, baselines):
            np.testing.assert_array_equal(resp.result.x, base.x)
        assert svc.kernel.injected["kill"] == 1
        stats = svc.stats()
        assert stats.worker_crashes >= 1  # the kill broke the pool...
        assert stats.pool_rebuilds >= 1   # ...and the kernel rebuilt it

    def test_sustained_chaos_stays_bit_identical(self, rng):
        problems = [random_fixed_problem(rng, 4, 4) for _ in range(8)]
        baselines = [solve(p) for p in problems]
        # raise+kill in 25% of dispatches (>= the 20% acceptance bar)
        # while the fault budget lasts; the budget bounds wall clock and
        # guarantees bounded retries eventually meet a clean dispatch.
        plan = FaultPlan(seed=17, raise_fraction=0.10, kill_fraction=0.15,
                         max_faults=6)
        assert plan.raise_fraction + plan.kill_fraction >= 0.20
        with chaos_service(plan, backend="process", workers=2,
                           default_retries=10, default_deadline_s=120.0,
                           ) as svc:
            t0 = time.monotonic()
            for p in problems:
                svc.submit(p)
            responses = svc.drain()
            elapsed = time.monotonic() - t0
        assert elapsed < 120.0  # nothing hung past its deadline
        assert all(r.ok for r in responses)
        for resp, base in zip(responses, baselines):
            np.testing.assert_array_equal(resp.result.x, base.x)
            np.testing.assert_array_equal(resp.result.s, base.s)
            np.testing.assert_array_equal(resp.result.d, base.d)
        # the plan's chaos budget was fully spent ...
        assert svc.kernel.faults_injected == 6
        # ... and the stats account for it: every kill surfaced as a
        # worker crash + rebuild, every raise as a service retry or a
        # batch fallback.
        stats = svc.stats()
        injected = svc.kernel.injected
        if injected["kill"]:
            assert stats.worker_crashes >= 1
            assert stats.pool_rebuilds >= 1
        if injected["raise"]:
            assert stats.retries + stats.batch_fallbacks >= 1
        assert stats.errors == 0 and stats.completed == len(problems)
