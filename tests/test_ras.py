"""RAS / iterative proportional fitting baseline."""

import numpy as np
import pytest

from repro.baselines.ras import ras_feasible_support, solve_ras


class TestConvergence:
    def test_balances_simple_table(self, rng):
        x0 = rng.uniform(1.0, 10.0, (5, 5))
        s0 = x0.sum(axis=1) * 1.3
        d0 = x0.sum(axis=0)
        d0 *= s0.sum() / d0.sum()
        result = solve_ras(x0, s0, d0)
        assert result.converged
        np.testing.assert_allclose(result.x.sum(axis=1), s0, rtol=1e-5)
        np.testing.assert_allclose(result.x.sum(axis=0), d0, rtol=1e-5)

    def test_biproportional_form(self, rng):
        """The RAS solution is r_i * x0_ij * c_j exactly."""
        x0 = rng.uniform(1.0, 10.0, (4, 6))
        s0 = x0.sum(axis=1) * rng.uniform(0.8, 1.2, 4)
        d0 = x0.sum(axis=0)
        d0 *= s0.sum() / d0.sum()
        result = solve_ras(x0, s0, d0)
        np.testing.assert_allclose(
            result.x, result.r[:, None] * x0 * result.c[None, :], rtol=1e-10
        )

    def test_preserves_zero_pattern(self, rng):
        x0 = rng.uniform(1.0, 10.0, (5, 5))
        x0[x0 < 5.0] = 0.0
        x0[:, 0] = 1.0  # keep support
        x0[0, :] = 1.0
        s0 = x0.sum(axis=1)
        d0 = x0.sum(axis=0)
        result = solve_ras(x0, s0, d0)
        assert np.all(result.x[x0 == 0.0] == 0.0)

    def test_already_balanced_is_fixed_point(self, rng):
        x0 = rng.uniform(1.0, 10.0, (3, 3))
        result = solve_ras(x0, x0.sum(axis=1), x0.sum(axis=0))
        assert result.iterations == 1
        np.testing.assert_allclose(result.x, x0, rtol=1e-12)


class TestNonconvergence:
    """The Mohr, Crown & Polenske (1987) failure modes the paper cites."""

    def test_structurally_infeasible_targets(self):
        # Cell (0,1) and (1,0) empty: x00 must satisfy both row 0 and
        # column 0 totals, which conflict.
        x0 = np.array([[1.0, 0.0], [0.0, 1.0]])
        s0 = np.array([3.0, 1.0])
        d0 = np.array([1.0, 3.0])
        result = solve_ras(x0, s0, d0, max_iterations=500)
        assert not result.converged

    def test_feasibility_prescreen(self):
        x0 = np.array([[1.0, 1.0], [0.0, 0.0]])  # empty row 1
        assert not ras_feasible_support(x0, np.array([1.0, 1.0]), np.array([1.0, 1.0]))
        assert not ras_feasible_support(
            np.ones((2, 2)), np.array([1.0, 1.0]), np.array([3.0, 1.0])
        )  # grand totals differ
        assert ras_feasible_support(
            np.ones((2, 2)), np.array([1.0, 1.0]), np.array([1.0, 1.0])
        )


class TestValidation:
    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            solve_ras(np.array([[-1.0]]), np.array([1.0]), np.array([1.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes"):
            solve_ras(np.ones((2, 2)), np.ones(3), np.ones(2))

    def test_history_recording(self, rng):
        x0 = rng.uniform(1.0, 10.0, (3, 3))
        s0 = x0.sum(axis=1) * 1.1
        d0 = x0.sum(axis=0)
        d0 *= s0.sum() / d0.sum()
        result = solve_ras(x0, s0, d0, record_history=True)
        assert len(result.history) == result.iterations


class TestRASvsSEA:
    def test_ras_and_sea_solve_different_objectives(self, rng):
        """RAS minimizes KL divergence, SEA the weighted quadratic — on an
        unbalanced update they generally disagree, which is the point of
        having a unified quadratic framework."""
        from repro.core.problems import FixedTotalsProblem
        from repro.core.sea import solve_fixed
        from repro.core.convergence import StoppingRule

        x0 = rng.uniform(1.0, 10.0, (4, 4))
        s0 = x0.sum(axis=1) * rng.uniform(0.5, 1.5, 4)
        d0 = x0.sum(axis=0)
        d0 *= s0.sum() / d0.sum()
        ras = solve_ras(x0, s0, d0)
        problem = FixedTotalsProblem(x0=x0, gamma=1.0 / x0, s0=s0, d0=d0)
        sea = solve_fixed(problem, stop=StoppingRule(eps=1e-9, max_iterations=5000))
        # Both feasible...
        np.testing.assert_allclose(ras.x.sum(axis=0), d0, rtol=1e-5)
        np.testing.assert_allclose(sea.x.sum(axis=0), d0, rtol=1e-8)
        # ...but the SEA solution has the (weakly) better quadratic objective.
        assert problem.objective(sea.x) <= problem.objective(ras.x) + 1e-9
