"""Convergence diagnostics: rate fitting, sparklines, reports."""

import math

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.sea import solve_fixed
from repro.diagnostics import (
    RateEstimate,
    convergence_report,
    estimate_geometric_rate,
    sparkline,
)
from repro.datasets.spe_data import spe_instance
from repro.spe.model import solve_spe


class TestRateEstimate:
    def test_exact_geometric_sequence(self):
        history = [0.5 * 0.8**t for t in range(30)]
        est = estimate_geometric_rate(history)
        assert est.rate == pytest.approx(0.8, rel=1e-6)
        assert est.amplitude == pytest.approx(0.5, rel=1e-6)
        assert est.r_squared == pytest.approx(1.0, abs=1e-9)

    def test_iterations_to_target(self):
        est = RateEstimate(rate=0.5, amplitude=1.0, r_squared=1.0, samples=10)
        assert est.iterations_to(2.0) == 0.0
        assert est.iterations_to(0.25) == pytest.approx(2.0)
        bad = RateEstimate(rate=1.5, amplitude=1.0, r_squared=1.0, samples=10)
        assert math.isinf(bad.iterations_to(0.1))

    def test_too_few_samples(self):
        est = estimate_geometric_rate([1.0])
        assert math.isnan(est.rate)

    def test_zeros_filtered(self):
        history = [1.0, 0.0, 0.5, 0.0, 0.25]
        est = estimate_geometric_rate(history)
        assert not math.isnan(est.rate)

    def test_spe_history_is_near_geometric(self):
        """Eq. (76) in practice: elastic SEA residuals decay at a good
        log-linear fit."""
        spe = spe_instance(40)
        result = solve_spe(
            spe,
            stop=StoppingRule(eps=1e-8, criterion="delta-x",
                              max_iterations=50_000),
            record_history=True,
        )
        est = estimate_geometric_rate(result.history[2:])
        assert 0.0 < est.rate < 1.0
        assert est.r_squared > 0.9


class TestSparkline:
    def test_monotone_residuals_render_descending(self):
        line = sparkline([10.0**-t for t in range(10)], width=10)
        assert len(line) == 10
        assert line[0] != line[-1]

    def test_empty(self):
        assert sparkline([]) == ""

    def test_downsampling(self):
        line = sparkline(list(np.linspace(1, 100, 500)), width=20)
        assert len(line) == 20

    def test_constant_sequence(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(line) == 3


class TestReport:
    def test_contains_all_sections(self, rng):
        problem = random_fixed_problem(rng, 8, 8, total_factor_low=0.4)
        result = solve_fixed(
            problem,
            stop=StoppingRule(eps=1e-9, max_iterations=5000),
            record_history=True,
        )
        report = convergence_report(result)
        assert "SEA-fixed" in report
        assert "work:" in report
        assert "serial fraction" in report

    def test_report_without_history(self, rng):
        problem = random_fixed_problem(rng, 5, 5)
        result = solve_fixed(problem)
        report = convergence_report(result)
        assert "SEA-fixed" in report  # no crash without history
