"""Bounded-cells extension (Ohuchi & Kaji 1984 variant)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.problems import FixedTotalsProblem
from repro.core.sea import solve_fixed
from repro.extensions.bounded import (
    BoundedProblem,
    solve_bounded,
    solve_piecewise_linear_bounded,
)

TIGHT = StoppingRule(eps=1e-9, max_iterations=10_000)


def _bounded_eval(lam, b_lo, b_hi, slopes, lower_sum):
    gain = slopes * (np.minimum(lam, b_hi) - b_lo).clip(min=0.0)
    return lower_sum + gain.sum()


class TestBoundedKernel:
    def test_matches_unbounded_kernel_when_bounds_inactive(self, rng):
        from repro.equilibration.exact import solve_piecewise_linear

        m, n = 10, 8
        B = rng.uniform(-20, 20, (m, n))
        SL = rng.uniform(0.1, 5.0, (m, n))
        target = rng.uniform(5.0, 60.0, m)
        lam_classic = solve_piecewise_linear(B, SL, target)
        lam_bounded = solve_piecewise_linear_bounded(
            B, np.full((m, n), np.inf), SL, np.zeros(m), target
        )
        for i in range(m):
            g = _bounded_eval(lam_bounded[i], B[i], np.full(n, np.inf), SL[i], 0.0)
            assert g == pytest.approx(target[i], abs=1e-8 * max(target[i], 1.0))
        np.testing.assert_allclose(lam_bounded, lam_classic, rtol=1e-10)

    def test_root_property_with_finite_bounds(self, rng):
        m, n = 12, 9
        b_lo = rng.uniform(-20, 0, (m, n))
        b_hi = b_lo + rng.uniform(0.5, 10, (m, n))
        slopes = rng.uniform(0.1, 5.0, (m, n))
        lower_sum = rng.uniform(0, 5, m)
        max_gain = (slopes * (b_hi - b_lo)).sum(axis=1)
        target = lower_sum + max_gain * rng.uniform(0.1, 0.9, m)
        lam = solve_piecewise_linear_bounded(b_lo, b_hi, slopes, lower_sum, target)
        for i in range(m):
            g = _bounded_eval(lam[i], b_lo[i], b_hi[i], slopes[i], lower_sum[i])
            assert g == pytest.approx(target[i], abs=1e-8 * max(target[i], 1.0))

    def test_target_below_lower_sum_rejected(self):
        with pytest.raises(ValueError, match="below the lower-bound sum"):
            solve_piecewise_linear_bounded(
                np.zeros((1, 2)), np.ones((1, 2)), np.ones((1, 2)),
                np.array([5.0]), np.array([1.0]),
            )

    def test_target_above_upper_sum_rejected(self):
        with pytest.raises(ValueError, match="above the upper-bound sum"):
            solve_piecewise_linear_bounded(
                np.zeros((1, 2)), np.ones((1, 2)), np.ones((1, 2)),
                np.array([0.0]), np.array([10.0]),
            )

    def test_target_at_lower_sum(self):
        lam = solve_piecewise_linear_bounded(
            np.zeros((1, 3)), np.ones((1, 3)), np.ones((1, 3)),
            np.array([2.0]), np.array([2.0]),
        )
        g = _bounded_eval(lam[0], np.zeros(3), np.ones(3), np.ones(3), 2.0)
        assert g == pytest.approx(2.0, abs=1e-10)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError, match="dominate"):
            solve_piecewise_linear_bounded(
                np.ones((1, 1)), np.zeros((1, 1)), np.ones((1, 1)),
                np.zeros(1), np.zeros(1),
            )


class TestBoundedProblem:
    def test_default_bounds_recover_classic_solution(self, rng):
        classic = random_fixed_problem(rng, 6, 7, total_factor_low=0.4)
        bounded = BoundedProblem(
            x0=classic.x0, gamma=classic.gamma, s0=classic.s0, d0=classic.d0
        )
        rb = solve_bounded(bounded, stop=TIGHT)
        rf = solve_fixed(classic, stop=TIGHT)
        np.testing.assert_allclose(rb.x, rf.x, atol=1e-8 * classic.s0.max())

    def test_upper_bounds_respected(self, rng):
        x0 = rng.uniform(1.0, 20.0, (5, 5))
        s0 = 2.0 * x0.sum(axis=1)
        d0 = 2.0 * x0.sum(axis=0)
        cap = np.full((5, 5), np.quantile(x0, 0.9) * 2.2)
        problem = BoundedProblem(
            x0=x0, gamma=np.ones((5, 5)), s0=s0, d0=d0, upper=cap,
        )
        result = solve_bounded(problem, stop=TIGHT)
        assert result.converged
        assert np.all(result.x <= cap + 1e-9)
        scale = s0.max()
        assert np.max(np.abs(result.x.sum(axis=0) - d0)) < 1e-7 * scale

    def test_lower_bounds_respected(self, rng):
        x0 = rng.uniform(5.0, 20.0, (4, 4))
        floor = np.full((4, 4), 2.0)
        s0 = x0.sum(axis=1)
        d0 = x0.sum(axis=0)
        problem = BoundedProblem(
            x0=x0, gamma=np.ones((4, 4)), s0=s0, d0=d0,
            lower=floor,
        )
        result = solve_bounded(problem, stop=TIGHT)
        assert np.all(result.x >= floor - 1e-9)

    def test_binding_caps_change_solution(self, rng):
        x0 = rng.uniform(1.0, 20.0, (5, 5))
        s0 = 1.5 * x0.sum(axis=1)
        d0 = 1.5 * x0.sum(axis=0)
        free = BoundedProblem(x0=x0, gamma=np.ones((5, 5)), s0=s0, d0=d0)
        r_free = solve_bounded(free, stop=TIGHT)
        cap_val = float(np.quantile(r_free.x, 0.7))
        capped = BoundedProblem(
            x0=x0, gamma=np.ones((5, 5)), s0=s0, d0=d0,
            upper=np.full((5, 5), max(cap_val, s0.max() / 5 * 1.05)),
        )
        r_capped = solve_bounded(capped, stop=TIGHT)
        assert r_capped.objective >= r_free.objective - 1e-9

    def test_kkt_with_bounds(self, rng):
        """Bound-constrained stationarity: grad - lam - mu is >= 0 at the
        lower bound, <= 0 at the upper bound, = 0 strictly between."""
        x0 = rng.uniform(1.0, 20.0, (6, 6))
        gamma = rng.uniform(0.5, 3.0, (6, 6))
        s0 = 1.4 * x0.sum(axis=1)
        d0 = 1.4 * x0.sum(axis=0)
        upper = np.full((6, 6), float(np.quantile(x0, 0.8)) * 1.9)
        problem = BoundedProblem(
            x0=x0, gamma=gamma, s0=s0, d0=d0, upper=upper
        )
        result = solve_bounded(problem, stop=TIGHT)
        grad = 2 * gamma * (result.x - x0) - result.lam[:, None] - result.mu[None, :]
        scale = float(np.abs(grad).max()) + 1.0
        at_lower = result.x <= 1e-9
        at_upper = result.x >= upper - 1e-9 * upper
        interior = ~at_lower & ~at_upper
        assert np.max(np.abs(grad[interior])) < 1e-6 * scale
        assert np.min(grad[at_lower], initial=0.0) > -1e-6 * scale
        assert np.max(grad[at_upper], initial=0.0) < 1e-6 * scale

    def test_infeasible_bounds_rejected(self):
        with pytest.raises(ValueError, match="incompatible"):
            BoundedProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s0=np.array([10.0, 10.0]), d0=np.array([10.0, 10.0]),
                upper=np.ones((2, 2)),
            )

    def test_crossed_bounds_rejected(self):
        with pytest.raises(ValueError, match="lower bounds"):
            BoundedProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
                lower=np.full((2, 2), 3.0), upper=np.ones((2, 2)),
            )


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), m=st.integers(2, 7), n=st.integers(2, 7))
def test_bounded_solution_feasible(seed, m, n):
    rng = np.random.default_rng(seed)
    x0 = rng.uniform(1.0, 20.0, (m, n))
    s0 = x0.sum(axis=1) * rng.uniform(0.8, 1.6, m)
    d0 = x0.sum(axis=0) * rng.uniform(0.8, 1.6, n)
    d0 *= s0.sum() / d0.sum()
    upper = np.maximum(np.full((m, n), 1.2 * s0.max() / n * 3), x0 * 1.5)
    problem = BoundedProblem(
        x0=x0, gamma=rng.uniform(0.5, 3.0, (m, n)), s0=s0, d0=d0, upper=upper
    )
    result = solve_bounded(problem, stop=TIGHT)
    assert np.all(result.x >= -1e-12)
    assert np.all(result.x <= upper + 1e-9 * upper)
    scale = s0.max()
    assert np.max(np.abs(result.x.sum(axis=0) - d0)) < 1e-6 * scale
