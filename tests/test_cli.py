"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.io import read_table_csv, write_table_csv


@pytest.fixture
def csv_problem(tmp_path, rng):
    x0 = rng.uniform(1.0, 20.0, (4, 4))
    s0 = x0.sum(axis=1) * 1.2
    d0 = x0.sum(axis=0)
    d0 *= s0.sum() / d0.sum()
    table = tmp_path / "x0.csv"
    write_table_csv(table, x0)
    rows = tmp_path / "s.csv"
    rows.write_text("\n".join(f"r{i},{v}" for i, v in enumerate(s0)) + "\n")
    cols = tmp_path / "d.csv"
    cols.write_text("\n".join(f"c{j},{v}" for j, v in enumerate(d0)) + "\n")
    return table, rows, cols, s0, d0


class TestSolve:
    def test_fixed_solve_writes_output(self, tmp_path, csv_problem, capsys):
        table, rows, cols, s0, d0 = csv_problem
        out = tmp_path / "solution.csv"
        code = main([
            "solve", "--kind", "fixed", "--table", str(table),
            "--row-totals", str(rows), "--col-totals", str(cols),
            "--weights", "chi-square", "--eps", "1e-6", "--out", str(out),
        ])
        assert code == 0
        x, _, _ = read_table_csv(out)
        np.testing.assert_allclose(x.sum(axis=0), d0, rtol=1e-4)
        assert "converged" in capsys.readouterr().out

    def test_elastic_solve(self, csv_problem, capsys):
        table, rows, cols, *_ = csv_problem
        code = main([
            "solve", "--kind", "elastic", "--table", str(table),
            "--row-totals", str(rows), "--col-totals", str(cols),
        ])
        assert code == 0

    def test_sam_solve_with_report(self, tmp_path, rng, capsys):
        x0 = rng.uniform(1.0, 20.0, (4, 4))
        table = tmp_path / "x0.csv"
        write_table_csv(table, x0)
        totals = tmp_path / "s.csv"
        s0 = 0.5 * (x0.sum(axis=1) + x0.sum(axis=0))
        totals.write_text("\n".join(f"a{i},{v}" for i, v in enumerate(s0)) + "\n")
        code = main([
            "solve", "--kind", "sam", "--table", str(table),
            "--row-totals", str(totals), "--report",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SEA-sam" in out
        assert "work:" in out

    def test_missing_col_totals_fails(self, csv_problem):
        table, rows, *_ = csv_problem
        with pytest.raises(SystemExit):
            main(["solve", "--kind", "fixed", "--table", str(table),
                  "--row-totals", str(rows)])

    def test_wrong_total_count_fails(self, tmp_path, csv_problem):
        table, rows, cols, *_ = csv_problem
        bad = tmp_path / "bad.csv"
        bad.write_text("r0,1.0\n")
        with pytest.raises(SystemExit, match="row totals"):
            main(["solve", "--kind", "fixed", "--table", str(table),
                  "--row-totals", str(bad), "--col-totals", str(cols)])


class TestSolveJSON:
    def test_json_output(self, tmp_path, csv_problem, capsys):
        table, rows, cols, s0, d0 = csv_problem
        out = tmp_path / "solution.csv"
        code = main([
            "solve", "--kind", "fixed", "--table", str(table),
            "--row-totals", str(rows), "--col-totals", str(cols),
            "--eps", "1e-6", "--json", "--out", str(out),
        ])
        assert code == 0
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["converged"] is True
        assert doc["algorithm"] == "SEA-fixed"
        x = np.asarray(doc["x"])
        np.testing.assert_allclose(x.sum(axis=0), d0, rtol=1e-4)
        assert out.exists()  # --out still writes the CSV

    def test_nonconvergence_exit_code_and_json(self, csv_problem, capsys):
        table, rows, cols, *_ = csv_problem
        code = main([
            "solve", "--kind", "fixed", "--table", str(table),
            "--row-totals", str(rows), "--col-totals", str(cols),
            "--eps", "1e-12", "--max-iterations", "1", "--json",
        ])
        assert code == 2
        import json

        doc = json.loads(capsys.readouterr().out)
        assert doc["converged"] is False
        assert doc["iterations"] == 1


@pytest.fixture
def jsonl_stream(tmp_path, rng):
    """A mixed request stream: fixed (x2 for batching), elastic, SAM."""
    import json

    from repro.io import problem_to_jsonable

    x0 = rng.uniform(1.0, 20.0, (4, 4))
    w = x0 * rng.uniform(0.8, 1.2, x0.shape)
    lines = []
    from repro.core.problems import (
        ElasticProblem,
        FixedTotalsProblem,
        SAMProblem,
    )

    for i, factor in enumerate((1.0, 1.02)):
        fixed = FixedTotalsProblem(
            x0=x0, gamma=1.0 / x0,
            s0=w.sum(axis=1) * factor, d0=w.sum(axis=0) * factor,
        )
        lines.append({"id": f"f{i}", "problem": problem_to_jsonable(fixed),
                      "eps": 1e-6})
    elastic = ElasticProblem(
        x0=x0, gamma=1.0 / x0, s0=x0.sum(axis=1), d0=x0.sum(axis=0),
        alpha=np.ones(4), beta=np.ones(4),
    )
    lines.append({"id": "e0", "problem": problem_to_jsonable(elastic)})
    sam = SAMProblem(
        x0=x0, gamma=1.0 / x0,
        s0=0.5 * (x0.sum(axis=1) + x0.sum(axis=0)), alpha=np.ones(4),
    )
    lines.append({"id": "s0", "problem": problem_to_jsonable(sam)})
    path = tmp_path / "requests.jsonl"
    path.write_text("\n".join(json.dumps(o) for o in lines) + "\n")
    return path


class TestServe:
    def test_mixed_stream_end_to_end(self, tmp_path, jsonl_stream, capsys):
        import json

        out = tmp_path / "responses.jsonl"
        code = main([
            "serve", "--jsonl", "--input", str(jsonl_stream),
            "--output", str(out), "--stats",
        ])
        assert code == 0
        responses = [json.loads(line) for line in
                     out.read_text().splitlines() if line]
        assert [r["id"] for r in responses] == ["f0", "f1", "e0", "s0"]
        assert all(r["status"] == "ok" and r["converged"] for r in responses)
        assert {r["algorithm"] for r in responses} == {
            "SEA-fixed", "SEA-elastic", "SEA-sam",
        }
        # Same-shape fixed requests were fused into one batch.
        assert [r["batched"] for r in responses] == [True, True, False, False]
        stats = json.loads(capsys.readouterr().err)
        assert stats["completed"] == 4
        assert stats["batches"] == 1

    def test_stdout_stream(self, jsonl_stream, capsys):
        import json

        code = main(["serve", "--jsonl", "--input", str(jsonl_stream),
                     "--no-matrix"])
        assert code == 0
        responses = [json.loads(line) for line in
                     capsys.readouterr().out.splitlines() if line]
        assert len(responses) == 4
        assert all("x" not in r for r in responses)

    def test_nonconvergence_exit_code(self, tmp_path, rng):
        import json

        from repro.core.problems import FixedTotalsProblem
        from repro.io import problem_to_jsonable

        x0 = rng.uniform(1.0, 20.0, (4, 4))
        w = x0 * rng.uniform(0.5, 2.0, x0.shape)
        problem = FixedTotalsProblem(x0=x0, gamma=1.0 / x0,
                                     s0=w.sum(axis=1), d0=w.sum(axis=0))
        path = tmp_path / "r.jsonl"
        path.write_text(json.dumps({
            "id": "r0", "problem": problem_to_jsonable(problem),
            "eps": 1e-12, "max_iterations": 1,
        }) + "\n")
        assert main(["serve", "--jsonl", "--input", str(path)]) == 2

    def test_malformed_lines_keep_stream_alive(self, tmp_path, rng, capsys):
        """A garbage line answers with a structured invalid-request error
        in stream position; every well-formed neighbour still solves."""
        import json

        from repro.core.problems import FixedTotalsProblem
        from repro.io import problem_to_jsonable

        x0 = rng.uniform(1.0, 20.0, (4, 4))
        w = x0 * rng.uniform(0.8, 1.2, x0.shape)
        problem = FixedTotalsProblem(x0=x0, gamma=1.0 / x0,
                                     s0=w.sum(axis=1), d0=w.sum(axis=0))
        good = json.dumps({"id": "ok0",
                           "problem": problem_to_jsonable(problem)})
        path = tmp_path / "r.jsonl"
        path.write_text("\n".join([
            good.replace("ok0", "ok1"),
            "{this is not json",                       # undecodable
            json.dumps({"id": "nop", "nope": True}),   # no problem payload
            good.replace("ok0", "ok2"),
        ]) + "\n")
        code = main(["serve", "--jsonl", "--input", str(path), "--no-matrix"])
        assert code == 1  # errors occurred, but the stream was served
        responses = [json.loads(line) for line in
                     capsys.readouterr().out.splitlines() if line]
        assert [r.get("id") for r in responses] == ["ok1", None, "nop", "ok2"]
        bad_json, bad_payload = responses[1], responses[2]
        assert bad_json["status"] == "error"
        assert bad_json["error"]["kind"] == "invalid-request"
        assert bad_json["line"] == 2
        assert bad_payload["error"]["kind"] == "invalid-request"
        assert bad_payload["line"] == 3
        assert responses[0]["status"] == "ok"
        assert responses[3]["status"] == "ok"

    def test_deadline_flag_classifies_overruns(self, jsonl_stream, capsys):
        import json

        code = main(["serve", "--jsonl", "--input", str(jsonl_stream),
                     "--no-matrix", "--deadline", "1e-9"])
        assert code == 1
        responses = [json.loads(line) for line in
                     capsys.readouterr().out.splitlines() if line]
        assert len(responses) == 4
        assert all(r["status"] == "error" for r in responses)
        assert {r["error"]["kind"] for r in responses} == {"deadline-exceeded"}


class TestOtherCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "table9" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "table4"]) == 0
        assert "MIG5560a" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiment", "table42"])

    def test_totals_file_without_labels(self, tmp_path, rng, capsys):
        """One-column totals files (no labels) are accepted too."""
        x0 = rng.uniform(1.0, 20.0, (3, 3))
        table = tmp_path / "x0.csv"
        write_table_csv(table, x0)
        rows = tmp_path / "s.csv"
        rows.write_text("\n".join(str(v) for v in x0.sum(axis=1)) + "\n")
        cols = tmp_path / "d.csv"
        cols.write_text("\n".join(str(v) for v in x0.sum(axis=0)) + "\n")
        assert main(["solve", "--table", str(table),
                     "--row-totals", str(rows),
                     "--col-totals", str(cols)]) == 0

class TestServeFlagValidation:
    """Inconsistent serve flags fail fast with actionable messages
    instead of silently misbehaving at runtime."""

    def _serve_exits(self, argv, match):
        with pytest.raises(SystemExit, match=match):
            main(["serve", "--jsonl", *argv])

    def test_max_per_kind_requires_max_queue(self):
        self._serve_exits(["--max-per-kind", "4"], "requires --max-queue")

    def test_max_per_shard_requires_max_queue(self):
        self._serve_exits(["--cluster", "2", "--max-per-shard", "4"],
                          "requires --max-queue")

    def test_max_per_shard_requires_cluster(self):
        self._serve_exits(["--max-queue", "8", "--max-per-shard", "4"],
                          "only applies with --cluster")

    def test_negative_drain_deadline(self):
        self._serve_exits(["--drain-deadline", "-1"],
                          "--drain-deadline must be >= 0")

    def test_negative_snapshot_every(self, tmp_path):
        self._serve_exits(
            ["--snapshot", str(tmp_path / "snap"), "--snapshot-every", "-5"],
            "--snapshot-every must be >= 1",
        )

    def test_snapshot_every_requires_snapshot(self):
        self._serve_exits(["--snapshot-every", "10"], "requires --snapshot")

    def test_nonpositive_cluster(self):
        self._serve_exits(["--cluster", "0"], "--cluster must be >= 1")

    def test_nonpositive_max_queue(self):
        self._serve_exits(["--max-queue", "0"], "--max-queue must be >= 1")

    def test_recover_requires_journal(self):
        self._serve_exits(["--recover"], "requires --journal")


class TestServeCluster:
    def test_cluster_stream_end_to_end(self, tmp_path, jsonl_stream, capsys):
        """serve --cluster answers a mixed stream through the sharded
        tier: same ids, same order, per-shard journals on disk, nested
        cluster stats on stderr."""
        import json

        out = tmp_path / "responses.jsonl"
        journal_dir = tmp_path / "journals"
        code = main([
            "serve", "--jsonl", "--input", str(jsonl_stream),
            "--output", str(out), "--stats",
            "--cluster", "3", "--shard-backend", "inline",
            "--journal", str(journal_dir),
            "--no-batch", "--no-warm-start",
        ])
        assert code == 0
        responses = [json.loads(line) for line in
                     out.read_text().splitlines() if line]
        assert [r["id"] for r in responses] == ["f0", "f1", "e0", "s0"]
        assert all(r["status"] == "ok" and r["converged"] for r in responses)
        journals = sorted(p.name for p in journal_dir.glob("shard-*.journal"))
        assert journals, "no per-shard journals written"
        stats = json.loads(capsys.readouterr().err)
        assert stats["completed"] == 4
        assert set(stats["cluster"]["shards"]) == {
            "shard-0", "shard-1", "shard-2",
        }
        assert stats["cluster"]["router"]["shards"] == 3

    def test_cluster_recover_answers_journaled_backlog(
        self, tmp_path, jsonl_stream, capsys
    ):
        """A journal directory with unanswered requests is replayed by
        serve --cluster --recover before any new input — and answered
        exactly once even when the shard count changed."""
        import json

        from repro.cluster import ClusterService
        from repro.service.wire import read_requests

        journal_dir = tmp_path / "journals"
        with open(jsonl_stream) as fh:
            requests = list(read_requests(fh))
        svc = ClusterService(
            shards=2, shard_backend="inline", journal_dir=journal_dir,
            warm_start=False, batching=False,
        )
        ids = [svc.submit(r) for r in requests]
        svc.shutdown(deadline_s=0)  # queue stays journaled, unanswered

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code = main([
            "serve", "--jsonl", "--input", str(empty),
            "--cluster", "3", "--shard-backend", "inline", "--recover",
            "--journal", str(journal_dir),
            "--no-batch", "--no-warm-start",
        ])
        assert code == 0
        responses = [json.loads(line) for line in
                     capsys.readouterr().out.splitlines() if line]
        assert sorted(r["id"] for r in responses) == sorted(ids)
        assert all(r["status"] == "ok" for r in responses)
