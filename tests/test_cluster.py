"""The cluster tier: hash ring, fingerprint routing, router semantics.

Process-isolation and crash behavior live in test_cluster_chaos.py;
everything here runs on the deterministic inline shard backend.
"""

import numpy as np
import pytest

from conftest import (
    random_elastic_problem,
    random_fixed_problem,
    random_sam_problem,
)
from repro.cluster import (
    ClusterService,
    HashRing,
    RecoveryCoordinator,
    request_route_key,
    route_key,
)
from repro.core.api import solve
from repro.errors import DuplicateRequestError, OverloadedError
from repro.service.request import SolveRequest


def inline_cluster(shards=3, **kwargs):
    """Deterministic cluster: inline shards, no warm state, no fusion
    (the test_durability bit-identity idiom, cluster-wide)."""
    kwargs.setdefault("warm_start", False)
    kwargs.setdefault("batching", False)
    return ClusterService(shards=shards, shard_backend="inline", **kwargs)


class TestHashRing:
    def test_lookup_is_deterministic_and_total(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        keys = [f"key-{i}" for i in range(500)]
        first = [ring.lookup(k) for k in keys]
        again = [ring.lookup(k) for k in keys]
        assert first == again
        assert set(first) == {"s0", "s1", "s2", "s3"}

    def test_spread_is_roughly_balanced(self):
        ring = HashRing([f"s{i}" for i in range(4)], vnodes=64)
        counts = ring.spread(f"key-{i}" for i in range(2000))
        assert min(counts.values()) > 0
        # vnodes smooth the split; no shard should own the majority.
        assert max(counts.values()) < 2000 * 0.5

    def test_adding_a_shard_moves_a_minority_of_keys(self):
        keys = [f"key-{i}" for i in range(1000)]
        ring = HashRing([f"s{i}" for i in range(4)])
        before = {k: ring.lookup(k) for k in keys}
        ring.add("s4")
        after = {k: ring.lookup(k) for k in keys}
        moved = sum(1 for k in keys if before[k] != after[k])
        # Consistent hashing: ~1/5 of the keyspace, never a reshuffle.
        assert 0 < moved < 1000 * 0.4
        # Every moved key moved *to* the new shard, not between old ones.
        assert all(after[k] == "s4" for k in keys if before[k] != after[k])

    def test_remove_restores_the_previous_placement(self):
        keys = [f"key-{i}" for i in range(300)]
        ring = HashRing(["a", "b", "c"])
        before = {k: ring.lookup(k) for k in keys}
        ring.add("d")
        ring.remove("d")
        assert {k: ring.lookup(k) for k in keys} == before

    def test_ring_validation(self):
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(["a"], vnodes=0)
        ring = HashRing(["a"])
        with pytest.raises(ValueError, match="already"):
            ring.add("a")
        with pytest.raises(ValueError, match="not on the ring"):
            ring.remove("b")
        with pytest.raises(ValueError, match="no shards"):
            HashRing().lookup("k")
        assert "a" in ring and len(ring) == 1 and ring.shards == ["a"]


class TestRouteKey:
    def test_drifting_totals_share_a_key(self, rng):
        """Revisions of one table (same structure, new totals) must
        co-locate with their warm history."""
        p = random_fixed_problem(rng, 6, 5)
        drifted = type(p)(
            x0=p.x0, gamma=p.gamma, s0=p.s0 * 1.05, d0=p.d0 * 1.05,
            mask=p.mask,
        )
        assert route_key(p) == route_key(drifted)

    def test_distinct_structures_get_distinct_keys(self, rng):
        a = random_fixed_problem(rng, 6, 5)
        b = random_fixed_problem(rng, 6, 5)  # fresh gamma/mask draw
        assert route_key(a) != route_key(b)

    def test_kinds_and_engines_separate(self, rng):
        fixed = random_fixed_problem(rng, 5, 5)
        sam = random_sam_problem(rng, 5)
        assert route_key(fixed) != route_key(sam)
        dense = SolveRequest(problem=fixed)
        sparse = SolveRequest(problem=fixed, engine="sparse")
        assert request_route_key(dense) != request_route_key(sparse)

    def test_unknown_problem_type_falls_back_to_type_name(self):
        class Odd:
            shape = (3, 3)

        assert "Odd" in route_key(Odd())


class TestClusterService:
    def test_drain_merges_all_shards_in_submission_order(self, rng):
        problems = (
            [random_fixed_problem(rng, 7, 5) for _ in range(6)]
            + [random_elastic_problem(rng, 5, 6) for _ in range(4)]
            + [random_sam_problem(rng, 6) for _ in range(3)]
        )
        with inline_cluster(shards=4) as svc:
            ids = [svc.submit(p) for p in problems]
            responses = svc.drain()
            assert [r.id for r in responses] == ids
            assert all(r.ok for r in responses)
            # Multiple shards actually participated.
            stats = svc.stats()
            active = [s for s in stats.shards.values() if s.requests]
            assert len(active) > 1
            assert stats.aggregate.requests == len(problems)

    def test_cluster_answers_match_direct_solves(self, rng):
        problems = [random_fixed_problem(rng, 6, 6) for _ in range(8)]
        with inline_cluster(shards=3) as svc:
            ids = [svc.submit(p) for p in problems]
            by_id = {r.id: r for r in svc.drain()}
        for rid, problem in zip(ids, problems):
            np.testing.assert_array_equal(
                by_id[rid].result.x, solve(problem).x
            )

    def test_one_family_always_lands_on_one_shard(self, rng):
        p = random_fixed_problem(rng, 8, 6)
        with inline_cluster(shards=4) as svc:
            home = svc.shard_of(p)
            for scale in (1.0, 1.1, 0.93, 1.21):
                drifted = type(p)(
                    x0=p.x0, gamma=p.gamma, s0=p.s0 * scale,
                    d0=p.d0 * scale, mask=p.mask,
                )
                rid = svc.submit(drifted)
                assert svc._pending[rid].shard == home
            svc.drain()

    def test_solve_returns_own_response_retains_others(self, rng):
        with inline_cluster(shards=3) as svc:
            others = [svc.submit(random_fixed_problem(rng, 5, 5))
                      for _ in range(3)]
            mine = random_fixed_problem(rng, 6, 4)
            response = svc.solve(mine)
            assert response.ok and response.id not in others
            collected = svc.collect()
            assert sorted(r.id for r in collected) == sorted(others)

    def test_duplicate_in_flight_id_rejected(self, rng):
        with inline_cluster(shards=2) as svc:
            p = random_fixed_problem(rng, 5, 5)
            svc.submit(SolveRequest(problem=p, id="dup"))
            with pytest.raises(DuplicateRequestError):
                svc.submit(SolveRequest(problem=p, id="dup"))
            svc.drain()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ClusterService(shards=0)
        with pytest.raises(ValueError, match="shard_backend"):
            ClusterService(shards=1, shard_backend="carrier-pigeon")
        with pytest.raises(ValueError, match="max_respawns"):
            ClusterService(shards=1, shard_backend="inline", max_respawns=-1)

    def test_stats_as_dict_nests_cluster_detail(self, rng):
        with inline_cluster(shards=2) as svc:
            svc.submit(random_fixed_problem(rng, 5, 5))
            svc.drain()
            doc = svc.stats().as_dict()
        assert doc["requests"] == 1  # aggregate at top level
        assert set(doc["cluster"]["shards"]) == {"shard-0", "shard-1"}
        assert doc["cluster"]["router"]["shards"] == 2
        for shard_doc in doc["cluster"]["shards"].values():
            assert "sort_reuse_rate" in shard_doc


class TestEdgeAdmission:
    def test_reject_newest_at_cluster_cap(self, rng):
        with inline_cluster(shards=2, max_queue=3) as svc:
            for _ in range(3):
                svc.submit(random_fixed_problem(rng, 5, 5))
            with pytest.raises(OverloadedError, match="cluster"):
                svc.submit(random_fixed_problem(rng, 5, 5))
            assert svc.stats().router["rejections"] == 1
            svc.drain()
            # Backlog cleared: admission opens again.
            svc.submit(random_fixed_problem(rng, 5, 5))
            svc.drain()

    def test_shed_oldest_at_the_router_answers_victim_once(self, rng, tmp_path):
        with inline_cluster(
            shards=2, max_queue=2, admission_policy="shed-oldest",
            journal_dir=tmp_path / "j",
        ) as svc:
            ids = [svc.submit(random_fixed_problem(rng, 5, 5))
                   for _ in range(2)]
            third = svc.submit(random_fixed_problem(rng, 5, 5))
            responses = svc.drain()
            by_id = {r.id: r for r in responses}
            # Everything answered exactly once, victim included.
            assert sorted(by_id) == sorted(ids + [third])
            assert len(responses) == len(by_id)
            victims = [r for r in responses
                       if r.error_kind == "overloaded"]
            assert len(victims) == 1 and victims[0].id == ids[0]
            assert svc.stats().router["sheds"] == 1

    def test_max_per_shard_fair_share(self, rng):
        """One hot family (one shard) hits its share; traffic routed to
        other shards is still admitted."""
        hot = random_fixed_problem(rng, 8, 6)
        with inline_cluster(
            shards=4, max_queue=32, max_per_shard=2
        ) as svc:
            hot_shard = svc.shard_of(hot)
            sent = 0
            for scale in (1.0, 1.03):
                svc.submit(type(hot)(
                    x0=hot.x0, gamma=hot.gamma, s0=hot.s0 * scale,
                    d0=hot.d0 * scale, mask=hot.mask,
                ))
                sent += 1
            with pytest.raises(OverloadedError, match="fair share"):
                svc.submit(type(hot)(
                    x0=hot.x0, gamma=hot.gamma, s0=hot.s0 * 1.07,
                    d0=hot.d0 * 1.07, mask=hot.mask,
                ))
            # A family on a *different* shard still gets in.
            admitted_elsewhere = 0
            while admitted_elsewhere < 2:
                p = random_fixed_problem(rng, 6, 6)
                if svc.shard_of(p) == hot_shard:
                    continue
                svc.submit(p)
                admitted_elsewhere += 1
            assert svc.pending == sent + admitted_elsewhere
            svc.drain()

    def test_block_policy_applies_backpressure(self, rng):
        with inline_cluster(
            shards=2, max_queue=2, admission_policy="block"
        ) as svc:
            ids = [svc.submit(random_fixed_problem(rng, 5, 5))
                   for _ in range(2)]
            # Third submit drains the cluster to make room.
            third = svc.submit(random_fixed_problem(rng, 5, 5))
            assert svc.pending == 1  # only the new one in flight
            delivered = svc.drain()
            assert sorted(r.id for r in delivered) == sorted(ids + [third])


class TestClusterRecovery:
    def test_recover_same_shard_count_is_exactly_once(self, rng, tmp_path):
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(8)]
        journal_dir = tmp_path / "j"
        with inline_cluster(shards=3, journal_dir=journal_dir) as svc:
            ids = [svc.submit(p) for p in problems]
            # Answer nothing: a zero-deadline shutdown leaves the whole
            # queue journaled for the next recovery.
            assert svc.shutdown(deadline_s=0) == []
        rec = ClusterService.recover(
            journal_dir, shards=3, shard_backend="inline",
            warm_start=False, batching=False,
        )
        with rec:
            assert rec.remap_summary["rewritten"] is False
            assert rec.pending == len(ids)
            responses = {r.id: r for r in rec.drain()}
        assert sorted(responses) == sorted(ids)
        for rid, problem in zip(ids, problems):
            np.testing.assert_array_equal(
                responses[rid].result.x, solve(problem).x
            )

    def test_recover_with_changed_shard_count_remaps(self, rng, tmp_path):
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(10)]
        journal_dir = tmp_path / "j"
        with inline_cluster(shards=2, journal_dir=journal_dir) as svc:
            # Answer the first four, leave six journaled-but-unanswered.
            ids = [svc.submit(p) for p in problems[:4]]
            delivered = {r.id: r for r in svc.drain()}
            ids += [svc.submit(p) for p in problems[4:]]
            svc.shutdown(deadline_s=0)
        # Scale out 2 -> 5: the coordinator rewrites the journals.
        rec = ClusterService.recover(
            journal_dir, shards=5, shard_backend="inline",
            warm_start=False, batching=False,
        )
        with rec:
            summary = rec.remap_summary
            assert summary["rewritten"] is True
            assert summary["shards_before"] == ["shard-0", "shard-1"]
            assert len(summary["shards_after"]) == 5
            assert summary["records"] == len(ids)
            # Answered ids come back verbatim, never re-solved...
            assert sorted(rec.recovered) == sorted(delivered)
            for rid, resp in rec.recovered.items():
                np.testing.assert_array_equal(
                    resp.result.x, delivered[rid].result.x
                )
            # ...and the unanswered replay exactly once, bit-identical.
            replayed = {r.id: r for r in rec.drain()}
            assert sorted(replayed) == sorted(set(ids) - set(delivered))
            for rid, problem in zip(ids, problems):
                if rid in replayed:
                    np.testing.assert_array_equal(
                        replayed[rid].result.x, solve(problem).x
                    )
        # Old journals are archived, not destroyed.
        archive = tmp_path / "j" / "remap-000"
        assert sorted(p.name for p in archive.iterdir()) == [
            "shard-0.journal", "shard-1.journal",
        ]

    def test_coordinator_plan_is_a_dry_run(self, rng, tmp_path):
        journal_dir = tmp_path / "j"
        with inline_cluster(shards=2, journal_dir=journal_dir) as svc:
            for _ in range(6):
                svc.submit(random_fixed_problem(rng, 5, 5))
            svc.shutdown(deadline_s=0)
        files_before = sorted(p.name for p in journal_dir.iterdir())
        plan = RecoveryCoordinator(
            journal_dir, [f"shard-{i}" for i in range(4)]
        ).plan()
        assert plan["records"] == 6 and plan["unanswered"] == 6
        # plan() must not touch the directory.
        assert sorted(p.name for p in journal_dir.iterdir()) == files_before

    def test_second_recovery_after_remap_stays_exactly_once(
        self, rng, tmp_path
    ):
        """Crash-after-remap: answered ids must still be answered —
        the coordinator rewrote them as request+response pairs."""
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(6)]
        journal_dir = tmp_path / "j"
        with inline_cluster(shards=3, journal_dir=journal_dir) as svc:
            ids = [svc.submit(p) for p in problems]
            svc.drain()  # answer everything
            svc.close()
        # First recovery remaps 3 -> 2 without serving any traffic...
        ClusterService.recover(
            journal_dir, shards=2, shard_backend="inline",
            warm_start=False, batching=False,
        ).close()
        # ...and a second recovery still finds every id answered.
        rec = ClusterService.recover(
            journal_dir, shards=2, shard_backend="inline",
            warm_start=False, batching=False,
        )
        with rec:
            assert sorted(rec.recovered) == sorted(ids)
            assert rec.pending == 0
            assert rec.drain() == []
