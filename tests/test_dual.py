"""Dual theory: gradients vs finite differences, bounds, iteration counts."""

import numpy as np
import pytest

from conftest import (
    random_elastic_problem,
    random_fixed_problem,
    random_sam_problem,
)
from repro.core.convergence import StoppingRule
from repro.core.dual import (
    curvature_bounds,
    geometric_iteration_bound,
    grad_zeta_elastic,
    grad_zeta_fixed,
    grad_zeta_sam,
    iteration_bound_T,
    zeta_elastic,
    zeta_fixed,
    zeta_sam,
)
from repro.core.sea import solve_fixed


def _finite_diff(fn, lam, mu, h=1e-6):
    g_lam = np.zeros_like(lam)
    g_mu = np.zeros_like(mu)
    for i in range(lam.size):
        e = np.zeros_like(lam); e[i] = h
        g_lam[i] = (fn(lam + e, mu) - fn(lam - e, mu)) / (2 * h)
    for j in range(mu.size):
        e = np.zeros_like(mu); e[j] = h
        g_mu[j] = (fn(lam, mu + e) - fn(lam, mu - e)) / (2 * h)
    return g_lam, g_mu


class TestGradients:
    def test_fixed_gradient_matches_finite_difference(self, rng):
        problem = random_fixed_problem(rng, 4, 5)
        lam = rng.normal(0, 10, 4)
        mu = rng.normal(0, 10, 5)
        g_lam, g_mu = grad_zeta_fixed(problem, lam, mu)
        f_lam, f_mu = _finite_diff(lambda l, m: zeta_fixed(problem, l, m), lam, mu)
        np.testing.assert_allclose(g_lam, f_lam, rtol=1e-4, atol=1e-3)
        np.testing.assert_allclose(g_mu, f_mu, rtol=1e-4, atol=1e-3)

    def test_elastic_gradient_matches_finite_difference(self, rng):
        problem = random_elastic_problem(rng, 4, 3)
        lam = rng.normal(0, 10, 4)
        mu = rng.normal(0, 10, 3)
        g_lam, g_mu = grad_zeta_elastic(problem, lam, mu)
        f_lam, f_mu = _finite_diff(lambda l, m: zeta_elastic(problem, l, m), lam, mu)
        np.testing.assert_allclose(g_lam, f_lam, rtol=1e-4, atol=1e-3)
        np.testing.assert_allclose(g_mu, f_mu, rtol=1e-4, atol=1e-3)

    def test_sam_gradient_matches_finite_difference(self, rng):
        problem = random_sam_problem(rng, 4)
        lam = rng.normal(0, 10, 4)
        mu = rng.normal(0, 10, 4)
        g_lam, g_mu = grad_zeta_sam(problem, lam, mu)
        f_lam, f_mu = _finite_diff(lambda l, m: zeta_sam(problem, l, m), lam, mu)
        np.testing.assert_allclose(g_lam, f_lam, rtol=1e-4, atol=1e-3)
        np.testing.assert_allclose(g_mu, f_mu, rtol=1e-4, atol=1e-3)

    def test_gradient_is_constraint_residual(self, rng):
        """Equation (27): ||grad zeta|| <= eps iff ||constraints|| <= eps."""
        problem = random_fixed_problem(rng, 5, 5)
        lam = rng.normal(0, 5, 5)
        mu = rng.normal(0, 5, 5)
        g_lam, g_mu = grad_zeta_fixed(problem, lam, mu)
        # Reconstruct x from (23a) and compare residuals directly.
        gamma = problem.gamma
        x = np.maximum(
            2 * gamma * problem.x0 + lam[:, None] + mu[None, :], 0.0
        ) / (2 * gamma)
        np.testing.assert_allclose(g_lam, problem.s0 - x.sum(axis=1), rtol=1e-12)
        np.testing.assert_allclose(g_mu, problem.d0 - x.sum(axis=0), rtol=1e-12)


class TestConcavity:
    @pytest.mark.parametrize("which", ["fixed", "elastic", "sam"])
    def test_zeta_concave_along_random_segments(self, rng, which):
        if which == "fixed":
            problem = random_fixed_problem(rng, 4, 4)
            fn = lambda l, m: zeta_fixed(problem, l, m)
            m_, n_ = 4, 4
        elif which == "elastic":
            problem = random_elastic_problem(rng, 4, 4)
            fn = lambda l, m: zeta_elastic(problem, l, m)
            m_, n_ = 4, 4
        else:
            problem = random_sam_problem(rng, 4)
            fn = lambda l, m: zeta_sam(problem, l, m)
            m_, n_ = 4, 4
        for _ in range(20):
            l1, m1 = rng.normal(0, 20, m_), rng.normal(0, 20, n_)
            l2, m2 = rng.normal(0, 20, m_), rng.normal(0, 20, n_)
            mid = fn((l1 + l2) / 2, (m1 + m2) / 2)
            assert mid >= 0.5 * (fn(l1, m1) + fn(l2, m2)) - 1e-8


class TestBounds:
    def test_curvature_bounds_ordering(self, rng):
        for problem in (
            random_fixed_problem(rng, 4, 4),
            random_elastic_problem(rng, 4, 4),
            random_sam_problem(rng, 4),
        ):
            m_l, M_l = curvature_bounds(problem)
            assert 0 < m_l <= M_l

    def test_iteration_bound_T_respected(self, rng):
        """The eq. (64) worst case bounds the measured iteration count
        when stopping on the dual-gradient norm."""
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.4)
        eps = 1e-2 * float(problem.s0.max())
        stop = StoppingRule(eps=eps, criterion="dual-gradient", max_iterations=5000)
        result = solve_fixed(problem, stop=stop)
        assert result.converged
        zeta0 = zeta_fixed(problem, np.zeros(6), np.zeros(6))
        zeta_star = zeta_fixed(problem, result.lam, result.mu)
        T = iteration_bound_T(problem, zeta_star - zeta0, eps)
        assert result.iterations <= max(T, 1.0)

    def test_iteration_bound_zero_gap(self, rng):
        problem = random_fixed_problem(rng, 3, 3)
        assert iteration_bound_T(problem, 0.0, 1e-3) == 0.0

    def test_geometric_bound_additive_in_log_eps(self):
        """Paper's remark after (77): tightening eps_bar 10x adds a
        constant number of iterations."""
        t1 = geometric_iteration_bound(1.0, 1e-3, rate=0.9)
        t2 = geometric_iteration_bound(1.0, 1e-4, rate=0.9)
        t3 = geometric_iteration_bound(1.0, 1e-5, rate=0.9)
        assert t2 - t1 == pytest.approx(t3 - t2, rel=1e-9)

    def test_geometric_bound_validation(self):
        with pytest.raises(ValueError):
            geometric_iteration_bound(1.0, 0.1, rate=1.5)

    def test_measured_rate_is_geometric(self, rng):
        """The dual gap contracts geometrically (eq. 76 shape)."""
        problem = random_fixed_problem(rng, 8, 8, total_factor_low=0.3)
        from repro.equilibration.exact import solve_piecewise_linear
        mask = problem.mask
        gamma_safe = np.where(mask, problem.gamma, 1.0)
        base = np.where(mask, -2.0 * gamma_safe * problem.x0, 0.0)
        slopes = np.where(mask, 1.0 / (2.0 * gamma_safe), 0.0)
        mu = np.zeros(8)
        values = []
        for _ in range(60):
            lam = solve_piecewise_linear(base - mu[None, :], slopes, problem.s0)
            mu = solve_piecewise_linear(
                base.T - lam[None, :], slopes.T.copy(), problem.d0
            )
            values.append(zeta_fixed(problem, lam, mu))
        gaps = np.array(values[-1]) - np.array(values[:-1])
        gaps = gaps[gaps > 1e-9 * abs(values[-1])]
        if gaps.size >= 3:
            ratios = gaps[1:] / gaps[:-1]
            assert np.all(ratios < 1.0 + 1e-9)
