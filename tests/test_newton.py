"""Exact Newton dual baseline (Klincewicz 1989)."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.baselines.newton import solve_newton_dual
from repro.core.convergence import StoppingRule
from repro.core.kkt import kkt_violations
from repro.core.sea import solve_fixed

SEA_TIGHT = StoppingRule(eps=1e-10, max_iterations=20_000)


class TestNewtonDual:
    def test_agrees_with_sea(self, rng):
        for _ in range(3):
            problem = random_fixed_problem(rng, 8, 10, total_factor_low=0.3)
            newton = solve_newton_dual(problem)
            sea = solve_fixed(problem, stop=SEA_TIGHT)
            assert newton.converged
            assert newton.objective == pytest.approx(sea.objective, rel=1e-9)

    def test_kkt_at_newton_solution(self, rng):
        problem = random_fixed_problem(rng, 7, 7, total_factor_low=0.3)
        result = solve_newton_dual(problem)
        v = kkt_violations(problem, result.x, result.lam, result.mu)
        assert max(v.values()) < 1e-6 * float(problem.s0.max())

    def test_quadratic_convergence_few_iterations(self, rng):
        """The citation's selling point: Newton needs single-digit
        iterations where first-order dual ascent needs dozens."""
        problem = random_fixed_problem(rng, 12, 12, total_factor_low=0.3,
                                       weight_spread=100.0)
        newton = solve_newton_dual(problem)
        assert newton.converged
        assert newton.iterations <= 12

    def test_masked_problems(self, rng):
        problem = random_fixed_problem(rng, 9, 9, density=0.5,
                                       total_factor_low=0.4)
        result = solve_newton_dual(problem)
        assert result.converged
        assert np.all(result.x[~problem.mask] == 0.0)

    def test_all_linear_algebra_charged_serial(self, rng):
        """The per-iteration (m+n)^3 solve is serial — the architectural
        contrast with SEA that motivates the paper's approach."""
        problem = random_fixed_problem(rng, 6, 6)
        result = solve_newton_dual(problem)
        assert result.counts.serial_ops > 0
        assert result.counts.parallel_ops == 0

    def test_history_records_residuals(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.4)
        result = solve_newton_dual(problem, record_history=True)
        assert len(result.history) == result.iterations
        # Residuals collapse fast (superlinear tail).
        assert result.history[-1] < result.history[0]
