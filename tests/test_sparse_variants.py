"""Sparse elastic/SAM solvers and the feasibility certifier."""

import numpy as np
import pytest

from conftest import random_elastic_problem, random_fixed_problem, random_sam_problem
from repro.core.convergence import StoppingRule
from repro.core.problems import ElasticProblem, FixedTotalsProblem, SAMProblem
from repro.core.sea import solve_elastic, solve_sam
from repro.feasibility import assert_feasible, certify_feasible, max_flow_bipartite
from repro.sparse.sea import solve_elastic_sparse, solve_sam_sparse

TIGHT = StoppingRule(eps=1e-8, max_iterations=20_000)


def _masked_elastic(rng, m, n, density=0.5):
    base = random_elastic_problem(rng, m, n)
    mask = rng.random((m, n)) < density
    mask[:, 0] = True
    mask[0, :] = True
    return ElasticProblem(
        x0=base.x0, gamma=base.gamma, s0=base.s0, d0=base.d0,
        alpha=base.alpha, beta=base.beta, mask=mask,
    )


class TestSparseElastic:
    def test_agrees_with_dense(self, rng):
        problem = _masked_elastic(rng, 15, 12)
        dense = solve_elastic(problem, stop=TIGHT)
        sparse = solve_elastic_sparse(problem, stop=TIGHT)
        np.testing.assert_allclose(
            sparse.x, dense.x, atol=1e-7 * problem.s0.max()
        )
        np.testing.assert_allclose(sparse.s, dense.s, rtol=1e-6)
        np.testing.assert_allclose(sparse.d, dense.d, rtol=1e-6)

    def test_spe_through_sparse_path(self):
        from repro.datasets.spe_data import spe_instance
        from repro.spe.isomorphism import spe_to_elastic

        elastic = spe_to_elastic(spe_instance(20))
        stop = StoppingRule(eps=1e-6, criterion="delta-x", max_iterations=50_000)
        dense = solve_elastic(elastic, stop=stop)
        sparse = solve_elastic_sparse(elastic, stop=stop)
        assert sparse.converged
        np.testing.assert_allclose(sparse.x, dense.x, atol=1e-5)


class TestSparseSAM:
    def test_agrees_with_dense(self, rng):
        base = random_sam_problem(rng, 10)
        mask = rng.random((10, 10)) < 0.6
        np.fill_diagonal(mask, False)
        mask[np.arange(10), (np.arange(10) + 1) % 10] = True
        mask[(np.arange(10) + 1) % 10, np.arange(10)] = True
        problem = SAMProblem(
            x0=np.where(mask, base.x0, 0.0), gamma=base.gamma,
            s0=base.s0, alpha=base.alpha, mask=mask,
        )
        stop = StoppingRule(eps=1e-9, criterion="imbalance",
                            max_iterations=20_000)
        dense = solve_sam(problem, stop=stop)
        sparse = solve_sam_sparse(problem, stop=stop)
        np.testing.assert_allclose(
            sparse.x, dense.x, atol=1e-6 * problem.s0.max()
        )
        np.testing.assert_allclose(sparse.s, dense.s, rtol=1e-6)

    def test_balance_holds(self, rng):
        problem = random_sam_problem(rng, 8)
        sparse = solve_sam_sparse(problem, stop=StoppingRule(
            eps=1e-9, criterion="imbalance", max_iterations=20_000))
        assert sparse.converged
        np.testing.assert_allclose(
            sparse.x.sum(axis=1), sparse.x.sum(axis=0),
            atol=1e-5 * problem.s0.max(),
        )


class TestFeasibility:
    def test_dense_pattern_always_feasible(self, rng):
        problem = random_fixed_problem(rng, 5, 5)
        assert certify_feasible(problem.mask, problem.s0, problem.d0)
        assert_feasible(problem)  # no raise

    def test_blocked_pattern_detected(self):
        # x00 must carry all of row 0 AND all of column 0, but the
        # targets conflict.
        mask = np.eye(2, dtype=bool)
        s0 = np.array([3.0, 1.0])
        d0 = np.array([1.0, 3.0])
        assert not certify_feasible(mask, s0, d0)

    def test_unbalanced_totals_detected(self):
        mask = np.ones((2, 2), bool)
        assert not certify_feasible(mask, np.array([1.0, 1.0]),
                                    np.array([3.0, 3.0]))

    def test_max_flow_value(self):
        mask = np.ones((2, 2), bool)
        s0 = np.array([2.0, 3.0])
        d0 = np.array([4.0, 1.0])
        assert max_flow_bipartite(mask, s0, d0) == pytest.approx(5.0)

    def test_upper_bounds_restrict_flow(self):
        mask = np.ones((2, 2), bool)
        s0 = np.array([2.0, 2.0])
        d0 = np.array([2.0, 2.0])
        tight = np.full((2, 2), 0.5)
        assert not certify_feasible(mask, s0, d0, upper=tight)
        loose = np.full((2, 2), 2.0)
        assert certify_feasible(mask, s0, d0, upper=loose)

    def test_assert_feasible_raises_with_diagnostic(self):
        problem = FixedTotalsProblem(
            x0=np.eye(2) + 0.0, gamma=np.ones((2, 2)),
            s0=np.array([3.0, 1.0]), d0=np.array([1.0, 3.0]),
            mask=np.eye(2, dtype=bool),
        )
        with pytest.raises(ValueError, match="max-flow certificate"):
            assert_feasible(problem)

    def test_zero_totals_trivially_feasible(self):
        mask = np.zeros((2, 2), bool)
        assert certify_feasible(mask, np.zeros(2), np.zeros(2))

    def test_sparse_random_patterns_agree_with_solver_success(self, rng):
        """Whenever the certificate says feasible, SEA converges (the
        contrapositive guards the certificate against false positives)."""
        from repro.core.sea import solve_fixed

        for seed in range(5):
            local = np.random.default_rng(seed)
            problem = random_fixed_problem(local, 8, 8, density=0.3,
                                           total_factor_low=0.5)
            assert certify_feasible(problem.mask, problem.s0, problem.d0)
            result = solve_fixed(problem, stop=StoppingRule(
                eps=1e-6, max_iterations=20_000))
            assert result.converged
