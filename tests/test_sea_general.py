"""General SEA (projection + diagonal SEA) on dense-weight problems."""

import numpy as np
import pytest

from repro.core.convergence import StoppingRule
from repro.core.problems import GeneralProblem
from repro.core.sea_general import diagonalized_bases, solve_general
from repro.datasets.general import dense_spd_weights

TIGHT = StoppingRule(eps=1e-8, criterion="delta-x", max_iterations=500)


def _general_fixed(rng, m, n, seed=0):
    x0 = rng.uniform(1.0, 50.0, (m, n))
    s0 = x0.sum(axis=1) * rng.uniform(0.5, 1.5, m)
    d0 = x0.sum(axis=0) * rng.uniform(0.5, 1.5, n)
    d0 *= s0.sum() / d0.sum()
    G = dense_spd_weights(m * n, seed=seed)
    return GeneralProblem(kind="fixed", x0=x0, G=G, s0=s0, d0=d0)


class TestDiagonalizedBases:
    def test_fixed_point_at_base(self, rng):
        M = dense_spd_weights(5, seed=1)
        z0 = rng.normal(0, 1, 5)
        np.testing.assert_allclose(diagonalized_bases(M, z0, z0), z0)

    def test_diagonal_matrix_recovers_base(self, rng):
        M = np.diag(rng.uniform(1.0, 5.0, 4))
        z0 = rng.normal(0, 1, 4)
        z_prev = rng.normal(0, 1, 4)
        np.testing.assert_allclose(diagonalized_bases(M, z_prev, z0), z0)

    def test_matches_paper_eq79_form(self, rng):
        """c = z_prev - D^{-1} M (z_prev - z0), the unconstrained minimizer
        of the paper's projection-step objective."""
        M = dense_spd_weights(6, seed=2)
        z0 = rng.normal(0, 1, 6)
        z_prev = rng.normal(0, 1, 6)
        expected = z_prev - (M @ (z_prev - z0)) / np.diag(M)
        np.testing.assert_allclose(
            diagonalized_bases(M, z_prev, z0), expected, rtol=1e-12
        )


class TestGeneralFixed:
    def test_feasibility(self, rng):
        problem = _general_fixed(rng, 5, 6)
        result = solve_general(problem, stop=TIGHT)
        assert result.converged
        scale = float(problem.s0.max())
        assert np.max(np.abs(result.x.sum(axis=0) - problem.d0)) < 1e-6 * scale
        assert np.max(np.abs(result.x.sum(axis=1) - problem.s0)) < 1e-4 * scale
        assert np.all(result.x >= 0)

    def test_full_kkt_of_general_problem(self, rng):
        """Stationarity of the *general* objective: on positive cells,
        grad = 2 [G (x - x0)]_ij - lam_i - mu_j must vanish."""
        problem = _general_fixed(rng, 4, 5)
        result = solve_general(
            problem,
            stop=StoppingRule(eps=1e-10, criterion="delta-x", max_iterations=2000),
            inner_stop=StoppingRule(eps=1e-12, max_iterations=2000),
        )
        m, n = problem.shape
        dx = (result.x - problem.x0).ravel()
        grad = (2.0 * (problem.G @ dx)).reshape(m, n)
        reduced = grad - result.lam[:, None] - result.mu[None, :]
        scale = float(np.abs(grad).max()) + 1.0
        positive = result.x > 1e-8 * problem.x0.max()
        assert np.max(np.abs(reduced[positive])) < 1e-4 * scale
        assert np.min(reduced[~positive]) > -1e-4 * scale

    def test_diagonal_G_matches_diagonal_solver(self, rng):
        from repro.core.problems import FixedTotalsProblem
        from repro.core.sea import solve_fixed

        m, n = 5, 4
        x0 = rng.uniform(1.0, 20.0, (m, n))
        gamma = rng.uniform(0.5, 3.0, (m, n))
        s0 = x0.sum(axis=1)
        d0 = x0.sum(axis=0) * rng.uniform(0.5, 1.5, n)
        d0 *= s0.sum() / d0.sum()
        general = GeneralProblem(
            kind="fixed", x0=x0, G=np.diag(gamma.ravel()), s0=s0, d0=d0
        )
        diagonal = FixedTotalsProblem(x0=x0, gamma=gamma, s0=s0, d0=d0)
        rg = solve_general(general, stop=TIGHT,
                           inner_stop=StoppingRule(eps=1e-10, max_iterations=2000))
        rd = solve_fixed(diagonal, stop=StoppingRule(eps=1e-10, max_iterations=2000))
        assert rg.objective == pytest.approx(rd.objective, rel=1e-6)
        np.testing.assert_allclose(rg.x, rd.x, atol=1e-4 * x0.max())

    def test_objective_decreases_vs_naive_feasible(self, rng):
        problem = _general_fixed(rng, 4, 4)
        result = solve_general(problem, stop=TIGHT)
        naive = np.outer(problem.s0, problem.d0) / problem.s0.sum()
        assert result.objective <= problem.objective(naive) * (1 + 1e-9)


class TestGeneralElasticAndSAM:
    def test_elastic_kind(self, rng):
        m = n = 4
        x0 = rng.uniform(1.0, 20.0, (m, n))
        problem = GeneralProblem(
            kind="elastic", x0=x0,
            G=dense_spd_weights(m * n, seed=3),
            s0=x0.sum(axis=1) * 1.2, d0=x0.sum(axis=0) * 0.9,
            A=dense_spd_weights(m, seed=4, diag_low=5, diag_high=10),
            B=dense_spd_weights(n, seed=5, diag_low=5, diag_high=10),
        )
        result = solve_general(problem, stop=TIGHT)
        assert result.converged
        scale = float(problem.s0.max())
        assert np.max(np.abs(result.x.sum(axis=1) - result.s)) < 1e-4 * scale
        assert np.max(np.abs(result.x.sum(axis=0) - result.d)) < 1e-6 * scale

    def test_sam_kind(self, rng):
        n = 5
        x0 = rng.uniform(1.0, 20.0, (n, n))
        problem = GeneralProblem(
            kind="sam", x0=x0,
            G=dense_spd_weights(n * n, seed=6),
            s0=0.5 * (x0.sum(axis=1) + x0.sum(axis=0)),
            A=dense_spd_weights(n, seed=7, diag_low=5, diag_high=10),
        )
        result = solve_general(problem, stop=TIGHT)
        assert result.converged
        scale = float(problem.s0.max())
        # Balance: row totals == column totals.
        np.testing.assert_allclose(
            result.x.sum(axis=1), result.x.sum(axis=0), atol=1e-4 * scale
        )

    def test_counts_track_matvecs(self, rng):
        problem = _general_fixed(rng, 4, 4)
        result = solve_general(problem, stop=TIGHT)
        assert result.counts.matvec_ops == pytest.approx(
            result.iterations * (16.0) ** 2
        )
