"""Failure injection and edge-of-domain behaviour.

A production library fails loudly and early on bad input; these tests
pin down the error surface: non-finite data, degenerate shapes, zero
totals, empty masks, and stopping-rule edge cases.
"""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.problems import ElasticProblem, FixedTotalsProblem, SAMProblem
from repro.core.sea import solve_elastic, solve_fixed, solve_sam
from repro.errors import InfeasibleProblemError, InvalidProblemError


class TestNonFiniteInputs:
    def test_nan_gamma_rejected(self):
        gamma = np.ones((2, 2))
        gamma[0, 0] = np.nan
        with pytest.raises(ValueError, match="gamma"):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=gamma,
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )

    def test_inf_gamma_rejected(self):
        gamma = np.ones((2, 2))
        gamma[1, 1] = np.inf
        with pytest.raises(ValueError, match="gamma"):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=gamma,
                s0=np.array([2.0, 2.0]), d0=np.array([2.0, 2.0]),
            )

    def test_nan_totals_rejected(self):
        with pytest.raises(ValueError):
            FixedTotalsProblem(
                x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
                s0=np.array([np.nan, 2.0]), d0=np.array([1.0, 1.0]),
            )


class TestDegenerateShapes:
    def test_single_cell_problem(self):
        problem = FixedTotalsProblem(
            x0=np.array([[5.0]]), gamma=np.array([[2.0]]),
            s0=np.array([3.0]), d0=np.array([3.0]),
        )
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-10,
                                                        max_iterations=100))
        assert result.x[0, 0] == pytest.approx(3.0)

    def test_single_row(self, rng):
        x0 = rng.uniform(1.0, 5.0, (1, 6))
        problem = FixedTotalsProblem(
            x0=x0, gamma=np.ones((1, 6)),
            s0=np.array([x0.sum() * 1.5]), d0=x0[0] * 1.5,
        )
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-10,
                                                        max_iterations=500))
        np.testing.assert_allclose(result.x[0], x0[0] * 1.5, rtol=1e-6)

    def test_single_column(self, rng):
        x0 = rng.uniform(1.0, 5.0, (4, 1))
        problem = FixedTotalsProblem(
            x0=x0, gamma=np.ones((4, 1)),
            s0=x0[:, 0] * 0.5, d0=np.array([x0.sum() * 0.5]),
        )
        result = solve_fixed(problem)
        np.testing.assert_allclose(result.x[:, 0], x0[:, 0] * 0.5, rtol=1e-6)


class TestZeroTotals:
    def test_zero_row_total_forces_zero_row(self, rng):
        x0 = rng.uniform(1.0, 5.0, (3, 3))
        s0 = x0.sum(axis=1)
        s0[1] = 0.0
        d0 = x0.sum(axis=0) * (s0.sum() / x0.sum())
        problem = FixedTotalsProblem(
            x0=x0, gamma=np.ones((3, 3)), s0=s0, d0=d0
        )
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-8,
                                                        max_iterations=2000))
        np.testing.assert_allclose(result.x[1], 0.0, atol=1e-9)

    def test_all_zero_totals(self):
        problem = FixedTotalsProblem(
            x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
            s0=np.zeros(2), d0=np.zeros(2),
        )
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-8,
                                                        max_iterations=100))
        np.testing.assert_allclose(result.x, 0.0, atol=1e-12)


class TestElasticEdgeCases:
    def test_tiny_alpha_lets_totals_run(self, rng):
        """Nearly free totals: the solution collapses to x ~= x0."""
        x0 = rng.uniform(1.0, 10.0, (4, 4))
        problem = ElasticProblem(
            x0=x0, gamma=np.ones((4, 4)),
            s0=3.0 * x0.sum(axis=1), d0=0.3 * x0.sum(axis=0),
            alpha=np.full(4, 1e-8), beta=np.full(4, 1e-8),
        )
        result = solve_elastic(problem, stop=StoppingRule(eps=1e-8,
                                                          max_iterations=20_000))
        np.testing.assert_allclose(result.x, x0, atol=1e-3 * x0.max())

    def test_extreme_weight_spread(self, rng):
        problem = ElasticProblem(
            x0=rng.uniform(1.0, 10.0, (4, 4)),
            gamma=10.0 ** rng.uniform(-4, 4, (4, 4)),
            s0=rng.uniform(10.0, 40.0, 4), d0=rng.uniform(10.0, 40.0, 4),
            alpha=10.0 ** rng.uniform(-2, 2, 4),
            beta=10.0 ** rng.uniform(-2, 2, 4),
        )
        result = solve_elastic(problem, stop=StoppingRule(eps=1e-6,
                                                          max_iterations=100_000))
        assert result.converged
        assert np.all(np.isfinite(result.x))


class TestSAMEdgeCases:
    def test_one_account(self):
        problem = SAMProblem(
            x0=np.array([[4.0]]), gamma=np.array([[1.0]]),
            s0=np.array([5.0]), alpha=np.array([1.0]),
        )
        result = solve_sam(problem, stop=StoppingRule(
            eps=1e-9, criterion="imbalance", max_iterations=1000))
        # Trivially balanced: row total == column total for one cell.
        assert result.x[0, 0] >= 0.0

    def test_sam_with_tiny_prior_totals(self, rng):
        x0 = rng.uniform(0.01, 0.1, (4, 4))
        problem = SAMProblem(
            x0=x0, gamma=np.ones((4, 4)),
            s0=np.full(4, 1e-6), alpha=np.ones(4),
        )
        result = solve_sam(problem, stop=StoppingRule(
            eps=1e-6, criterion="imbalance", max_iterations=50_000))
        assert np.all(np.isfinite(result.x))


class TestBudgetAndHistory:
    def test_max_iterations_one(self, rng):
        problem = random_fixed_problem(rng, 4, 4)
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-15,
                                                        max_iterations=1))
        assert result.iterations == 1
        assert np.all(np.isfinite(result.x))

    def test_result_usable_after_nonconvergence(self, rng):
        problem = random_fixed_problem(rng, 6, 6, total_factor_low=0.3)
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-15,
                                                        max_iterations=2))
        # Column constraints hold even at early exit (column phase last).
        np.testing.assert_allclose(
            result.x.sum(axis=0), problem.d0, rtol=1e-8
        )


class TestInfeasibleSupport:
    """Unsatisfiable mask/total combinations answer with the classified
    :class:`~repro.errors.InfeasibleProblemError`, never NaN output."""

    def test_masked_row_with_positive_total_raises(self):
        mask = np.ones((3, 3), dtype=bool)
        mask[0] = False  # row 0 has support nowhere...
        problem = FixedTotalsProblem(
            x0=np.ones((3, 3)), gamma=np.ones((3, 3)),
            s0=np.array([2.0, 4.0, 4.0]),  # ...but must ship 2.0
            d0=np.array([4.0, 3.0, 3.0]),
            mask=mask,
        )
        with pytest.raises(InfeasibleProblemError):
            solve_fixed(problem)

    def test_masked_column_with_positive_total_raises(self):
        mask = np.ones((3, 3), dtype=bool)
        mask[:, 1] = False
        problem = FixedTotalsProblem(
            x0=np.ones((3, 3)), gamma=np.ones((3, 3)),
            s0=np.array([3.0, 3.0, 3.0]),
            d0=np.array([4.0, 2.0, 3.0]),
            mask=mask,
        )
        with pytest.raises(InfeasibleProblemError):
            solve_fixed(problem)

    def test_infeasible_error_is_still_a_value_error(self):
        # Taxonomy classes keep their legacy base so existing
        # ``except ValueError`` call sites continue to work.
        assert issubclass(InfeasibleProblemError, ValueError)
        assert InfeasibleProblemError.kind == "infeasible"

    def test_assert_feasible_classifies(self):
        from repro.feasibility import assert_feasible

        mask = np.ones((2, 2), dtype=bool)
        mask[0] = False
        problem = FixedTotalsProblem(
            x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
            s0=np.array([1.0, 1.0]), d0=np.array([1.0, 1.0]),
            mask=mask,
        )
        with pytest.raises(InfeasibleProblemError):
            assert_feasible(problem)


class TestStoppingRuleDomain:
    def test_service_rejects_nonpositive_eps(self, rng):
        from repro.service.request import SolveRequest, resolve_stop

        request = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                               eps=0.0)
        with pytest.raises(InvalidProblemError):
            resolve_stop(request, "fixed")

    def test_service_rejects_zero_max_iterations(self, rng):
        from repro.service.request import SolveRequest, resolve_stop

        request = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                               max_iterations=0)
        with pytest.raises(InvalidProblemError):
            resolve_stop(request, "fixed")
