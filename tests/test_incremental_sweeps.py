"""Incremental active-set sweeps: bit-identity under adversarial walks.

The incremental layer may only ever *skip* work it can prove redundant:
a skipped row reuses its multiplier because no input changed, a
repaired permutation is accepted only when it passes the stable-order
uniqueness check, and a skipped sweep returns the previous multipliers
because nothing moved.  Each test drives the same dual walk through an
incremental and a non-incremental workspace (or the cold kernel) and
asserts the outputs are *equal*, not close — then checks the counters
prove the cheap path actually ran.
"""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.sea import solve_fixed
from repro.equilibration.exact import solve_piecewise_linear
from repro.equilibration.workspace import INCREMENTAL_ENV, SweepWorkspace
from repro.service import SolveService
from repro.service.batching import solve_batch

STOP = StoppingRule(eps=1e-9, max_iterations=5000)


def _pair(m, n):
    """(incremental, non-incremental) workspaces of one shape."""
    return (
        SweepWorkspace(m, n, incremental=True),
        SweepWorkspace(m, n, incremental=False),
    )


def _walk(ws, base, slopes, target, mus):
    return [
        solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        for mu in mus
    ]


class TestFullSkip:
    def test_frozen_duals_skip_whole_sweeps(self, rng):
        m, n = 10, 12
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        mu = rng.uniform(-1.0, 1.0, n)
        inc, ref = _pair(m, n)
        mus = [mu] * 6  # nothing moves after the first sweep
        lams_inc = _walk(inc, base, slopes, target, mus)
        lams_ref = _walk(ref, base, slopes, target, mus)
        for a, b in zip(lams_inc, lams_ref):
            np.testing.assert_array_equal(a, b)
        assert inc.rows_skipped >= 5 * m  # every repeat fully skipped
        assert ref.rows_skipped == 0
        assert inc.sweeps == ref.sweeps == 6

    def test_skip_result_is_a_copy(self, rng):
        m, n = 4, 5
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        ws = SweepWorkspace(m, n, incremental=True)
        mu = np.zeros(n)
        lam1 = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        lam2 = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(lam1, lam2)
        lam2[:] = -1.0  # mutating the returned copy must not poison
        lam3 = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(lam1, lam3)


class TestRepair:
    def test_single_dual_perturbation_repairs(self, rng):
        # Sparse-active rows: one moved dual touches few rows, the
        # design point of the splice repair.
        m, n = 40, 30
        base = np.full((m, n), 0.0)
        active = rng.random((m, n)) < 0.15
        for i in np.flatnonzero(~active.any(axis=1)):
            active[i, rng.integers(n)] = True
        base = np.where(active, rng.uniform(-5.0, 5.0, (m, n)), base)
        slopes = np.where(active, rng.uniform(0.5, 2.0, (m, n)), 0.0)
        target = rng.uniform(5.0, 20.0, m)
        inc, ref = _pair(m, n)
        mu = rng.uniform(-0.5, 0.5, n)
        mus = [mu.copy()]
        for k in range(8):
            mu = mu.copy()
            mu[int(rng.integers(n))] += rng.uniform(0.5, 2.0)
            mus.append(mu)
        lams_inc = _walk(inc, base, slopes, target, mus)
        lams_ref = _walk(ref, base, slopes, target, mus)
        for a, b in zip(lams_inc, lams_ref):
            np.testing.assert_array_equal(a, b)
        assert inc.rows_skipped > 0  # untouched rows reused verbatim
        assert ref.perm_repairs == 0

    def test_tie_heavy_walk_bit_identical(self, rng):
        # Duplicated breakpoint levels: every dual nudge creates or
        # breaks ties, attacking the stable-order acceptance check.
        m, n = 15, 20
        levels = np.array([-2.0, 0.0, 0.0, 1.0, 3.0])
        base = levels[rng.integers(0, levels.size, (m, n))]
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 30.0, m)
        inc, ref = _pair(m, n)
        mu = np.zeros(n)
        mus = [mu.copy()]
        for _ in range(10):
            mu = mu.copy()
            mu[int(rng.integers(n))] += rng.choice([-1.0, 1.0, 2.0])
            mus.append(mu)
        for a, b in zip(
            _walk(inc, base, slopes, target, mus),
            _walk(ref, base, slopes, target, mus),
        ):
            np.testing.assert_array_equal(a, b)

    def test_nan_poisoning_mid_walk(self, rng):
        """A NaN appearing between incremental sweeps must be seen by
        the content diff and produce exactly the cold kernel's result
        (or its error), never a stale skip."""
        m, n = 8, 10
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        ws = SweepWorkspace(m, n, incremental=True)
        mu = np.zeros(n)
        solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        # In-place mutation of the caller's base — the hardest case:
        # object identity is unchanged, only content differs.
        base[2, 3] = np.nan
        lam_w = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(base, slopes, target)
        )
        # Fully-NaN row: both paths raise the identical error, and the
        # failed sweep must not leave trusted caches behind.
        base[2] = np.nan
        with pytest.raises(ValueError) as warm_err:
            solve_piecewise_linear(
                ws.shift(base, mu), slopes, target, workspace=ws
            )
        with pytest.raises(ValueError) as cold_err:
            solve_piecewise_linear(base, slopes, target)
        assert str(warm_err.value) == str(cold_err.value)
        base[2] = rng.uniform(-5.0, 5.0, n)
        lam_after = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_after, solve_piecewise_linear(base, slopes, target)
        )

    def test_in_place_base_mutation_never_skips_stale(self, rng):
        m, n = 6, 7
        base = rng.uniform(-5.0, 5.0, (m, n))
        slopes = rng.uniform(0.5, 2.0, (m, n))
        target = rng.uniform(5.0, 20.0, m)
        ws = SweepWorkspace(m, n, incremental=True)
        mu = np.zeros(n)
        solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        base *= 1.01  # silent in-place change, same object identity
        lam_w = solve_piecewise_linear(
            ws.shift(base, mu), slopes, target, workspace=ws
        )
        np.testing.assert_array_equal(
            lam_w, solve_piecewise_linear(base, slopes, target)
        )


class TestDrivers:
    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv(INCREMENTAL_ENV, "0")
        assert not SweepWorkspace(2, 2).incremental
        monkeypatch.delenv(INCREMENTAL_ENV)
        assert SweepWorkspace(2, 2).incremental

    def test_solo_driver_identical_with_and_without(self, rng, monkeypatch):
        problem = random_fixed_problem(rng, 9, 8)
        monkeypatch.setenv(INCREMENTAL_ENV, "0")
        ref = solve_fixed(problem, stop=STOP)
        monkeypatch.delenv(INCREMENTAL_ENV)
        cmp_ = solve_fixed(problem, stop=STOP)
        assert ref.iterations == cmp_.iterations
        np.testing.assert_array_equal(ref.x, cmp_.x)

    def test_batch_driver_identical_with_and_without(self, rng, monkeypatch):
        problems = [random_fixed_problem(rng, 6, 6) for _ in range(3)]
        monkeypatch.setenv(INCREMENTAL_ENV, "0")
        ref = solve_batch(problems, stop=STOP)
        monkeypatch.delenv(INCREMENTAL_ENV)
        cmp_ = solve_batch(problems, stop=STOP)
        for a, b in zip(ref, cmp_):
            np.testing.assert_array_equal(a.x, b.x)

    def test_service_identical_and_counters_surface(self, rng, monkeypatch):
        problem = random_fixed_problem(rng, 7, 7)
        monkeypatch.setenv(INCREMENTAL_ENV, "0")
        with SolveService() as svc:
            ref = svc.solve(problem, batchable=False)
        monkeypatch.delenv(INCREMENTAL_ENV)
        with SolveService() as svc:
            cmp_ = svc.solve(problem, batchable=False)
            stats = svc.stats()
        np.testing.assert_array_equal(ref.result.x, cmp_.result.x)
        # The incremental/backend counters ride the stats pipeline end
        # to end: dataclass fields, merge, JSON view, Prometheus text.
        as_dict = stats.as_dict()
        for key in (
            "sort_rows_skipped",
            "sort_perm_repairs",
            "sort_full_resorts",
            "backend_solves",
        ):
            assert key in as_dict
        assert sum(stats.backend_solves.values()) > 0
        merged = stats.merge(stats)
        assert merged.sort_full_resorts == 2 * stats.sort_full_resorts
        assert sum(merged.backend_solves.values()) == 2 * sum(
            stats.backend_solves.values()
        )
        text = stats.metrics_text()
        assert "repro_sort_perm_repairs_total" in text
        assert "repro_sort_rows_skipped_total" in text
        assert "repro_backend_solves_total" in text
