"""Dataset generators: documented structure and determinism."""

import numpy as np
import pytest

from repro.core.problems import ElasticProblem, GeneralProblem
from repro.datasets.general import dense_spd_weights, general_table7_instance
from repro.datasets.io_tables import IO_INSTANCES, base_io_table, io_instance
from repro.datasets.migration import (
    MIGRATION_INSTANCES,
    base_migration_table,
    general_migration_names,
    migration_instance,
)
from repro.datasets.sam import SAM_INSTANCES, sam_instance
from repro.datasets.spe_data import spe_instance
from repro.datasets.synthetic import large_diagonal_fixed


class TestSynthetic:
    def test_table1_recipe(self):
        p = large_diagonal_fixed(50, seed=1)
        assert p.shape == (50, 50)
        assert np.all((p.x0 >= 0.1) & (p.x0 <= 10_000.0))
        np.testing.assert_allclose(p.gamma, 1.0 / p.x0)
        np.testing.assert_allclose(p.s0, 2.0 * p.x0.sum(axis=1))
        np.testing.assert_allclose(p.d0, 2.0 * p.x0.sum(axis=0))

    def test_deterministic(self):
        a = large_diagonal_fixed(20, seed=7)
        b = large_diagonal_fixed(20, seed=7)
        np.testing.assert_array_equal(a.x0, b.x0)

    def test_rectangular(self):
        p = large_diagonal_fixed(10, 20, seed=2)
        assert p.shape == (10, 20)


class TestIOTables:
    def test_documented_densities(self):
        for name, spec in IO_INSTANCES.items():
            x0, mask = base_io_table(spec.size, spec.density, spec.seed)
            assert mask.mean() == pytest.approx(spec.density, abs=0.02)
            assert x0.shape == (spec.size, spec.size)

    def test_every_row_and_column_connected(self):
        x0, mask = base_io_table(100, 0.05, seed=3)
        assert mask.any(axis=1).all()
        assert mask.any(axis=0).all()

    def test_growth_variant_totals_balanced(self):
        p = io_instance("IOC72a")
        assert p.s0.sum() == pytest.approx(p.d0.sum())
        # a-variant: totals grew by 0-10%.
        base_rows = np.where(p.mask, p.x0, 0.0).sum(axis=1)
        ratio = p.s0 / base_rows
        assert np.all(ratio >= 1.0 - 1e-9)
        assert np.all(ratio <= 1.101)

    def test_c_variant_perturbs_entries(self):
        p0 = io_instance("IOC72c", replicate=0)
        p1 = io_instance("IOC72c", replicate=1)
        assert not np.array_equal(p0.x0, p1.x0)
        # Totals come from the *unperturbed* base: identical across replicates.
        np.testing.assert_array_equal(p0.s0, p1.s0)

    def test_same_base_across_variants(self):
        a = io_instance("IO72a")
        b = io_instance("IO72b")
        np.testing.assert_array_equal(a.mask, b.mask)
        np.testing.assert_array_equal(a.x0, b.x0)


class TestSAM:
    @pytest.mark.parametrize("name,accounts,transactions", [
        ("STONE", 5, 12), ("TURK", 8, 19), ("SRI", 6, 20),
    ])
    def test_documented_small_dimensions(self, name, accounts, transactions):
        p = sam_instance(name)
        assert p.n == accounts
        assert int(np.count_nonzero(p.x0 > 0)) == transactions

    def test_usda_dense(self):
        p = sam_instance("USDA82E")
        assert p.n == 133
        assert np.all(p.mask)

    def test_every_instance_listed(self):
        assert set(SAM_INSTANCES) == {
            "STONE", "TURK", "SRI", "USDA82E", "S500", "S750", "S1000"
        }

    def test_perturbation_unbalances(self):
        p = sam_instance("STONE")
        imbalance = np.abs(p.x0.sum(axis=1) - p.x0.sum(axis=0))
        assert imbalance.max() > 0  # estimation has something to do


class TestMigration:
    def test_diagonal_is_structural_zero(self):
        p = migration_instance("MIG5560a")
        assert isinstance(p, ElasticProblem)
        assert not p.mask.diagonal().any()
        assert np.all(p.x0.diagonal() == 0.0)

    def test_unit_weights(self):
        p = migration_instance("MIG6570b")
        assert np.all(p.gamma == 1.0)
        assert np.all(p.alpha == 1.0)

    def test_vintage_volumes_increase(self):
        totals = [base_migration_table(v).sum() for v in (5560, 6570, 7580)]
        assert totals[0] < totals[1] < totals[2]

    def test_all_nine_elastic_instances(self):
        assert len(MIGRATION_INSTANCES) == 9
        for name in MIGRATION_INSTANCES:
            p = migration_instance(name)
            assert p.shape == (48, 48)

    def test_general_variants(self):
        names = general_migration_names()
        assert len(names) == 6
        p = migration_instance(names[0])
        assert isinstance(p, GeneralProblem)
        assert p.G.shape == (2304, 2304)
        assert p.kind == "fixed"


class TestGeneralWeights:
    def test_strict_diagonal_dominance(self):
        G = dense_spd_weights(50, seed=5)
        diag = np.abs(np.diag(G))
        off = np.abs(G).sum(axis=1) - diag
        assert np.all(off < diag)

    def test_symmetric_with_negative_offdiagonals(self):
        G = dense_spd_weights(30, seed=6)
        np.testing.assert_allclose(G, G.T)
        off = G[~np.eye(30, dtype=bool)]
        assert (off < 0).any()

    def test_diagonal_range(self):
        G = dense_spd_weights(40, seed=7)
        d = np.diag(G)
        assert np.all((d >= 500.0) & (d <= 800.0))

    def test_positive_definite(self):
        G = dense_spd_weights(25, seed=8)
        assert np.linalg.eigvalsh(G).min() > 0

    def test_table7_instance_valid(self):
        p = general_table7_instance(10)
        assert p.G.shape == (100, 100)
        assert p.s0.sum() == pytest.approx(p.d0.sum())


class TestSPEData:
    def test_deterministic(self):
        a = spe_instance(20)
        b = spe_instance(20)
        np.testing.assert_array_equal(a.h, b.h)

    def test_profitable_trade_exists(self):
        spe = spe_instance(30)
        # Best demand price exceeds some supply price + intercept cost.
        assert spe.q.max() > (spe.p[:, None] + spe.h).min()
