"""Parallel engine: partitioning, executor equivalence, dispatch counts."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.sea import solve_elastic, solve_fixed
from repro.datasets.spe_data import spe_instance
from repro.parallel.executor import ParallelKernel
from repro.parallel.partition import partition_blocks
from repro.spe.model import solve_spe


class TestPartition:
    def test_docstring_example(self):
        assert partition_blocks(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_covers_range_exactly(self):
        for count in (1, 5, 16, 97):
            for workers in (1, 2, 3, 8, 100):
                blocks = partition_blocks(count, workers)
                covered = [i for lo, hi in blocks for i in range(lo, hi)]
                assert covered == list(range(count))

    def test_balanced_within_one(self):
        blocks = partition_blocks(100, 7)
        sizes = [hi - lo for lo, hi in blocks]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_items_than_workers(self):
        blocks = partition_blocks(2, 5)
        assert len(blocks) == 2

    def test_zero_items(self):
        assert partition_blocks(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_blocks(-1, 2)
        with pytest.raises(ValueError):
            partition_blocks(5, 0)


class TestParallelKernel:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_identical_to_vectorized_fixed(self, rng, backend, workers):
        problem = random_fixed_problem(rng, 16, 11, total_factor_low=0.4)
        baseline = solve_fixed(problem, stop=StoppingRule(eps=1e-8, max_iterations=2000))
        with ParallelKernel(workers=workers, backend=backend) as kernel:
            result = solve_fixed(
                problem, stop=StoppingRule(eps=1e-8, max_iterations=2000),
                kernel=kernel,
            )
        np.testing.assert_array_equal(result.x, baseline.x)
        np.testing.assert_array_equal(result.lam, baseline.lam)
        assert result.iterations == baseline.iterations

    def test_identical_to_vectorized_elastic(self, rng):
        spe = spe_instance(12)
        stop = StoppingRule(eps=1e-6, criterion="delta-x", max_iterations=20_000)
        baseline = solve_spe(spe, stop=stop)
        with ParallelKernel(workers=3, backend="serial") as kernel:
            result = solve_spe(spe, stop=stop, kernel=kernel)
        np.testing.assert_array_equal(result.x, baseline.x)

    def test_dispatch_counter(self, rng):
        problem = random_fixed_problem(rng, 8, 8)
        with ParallelKernel(workers=2, backend="serial") as kernel:
            result = solve_fixed(problem, kernel=kernel)
            assert kernel.dispatches == 2 * result.iterations

    def test_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelKernel(workers=0)
        with pytest.raises(ValueError, match="backend"):
            ParallelKernel(workers=1, backend="gpu")

    def test_single_worker_no_pool(self):
        kernel = ParallelKernel(workers=1, backend="serial")
        assert kernel._pool is None
        kernel.close()

    def test_pool_reused_across_solves(self, rng):
        """The long-lived pool is created once and shared by every solve."""
        problem = random_fixed_problem(rng, 8, 8)
        with ParallelKernel(workers=2, backend="thread") as kernel:
            solve_fixed(problem, kernel=kernel)
            pool = kernel._pool
            assert pool is not None
            solve_fixed(problem, kernel=kernel)
            assert kernel._pool is pool

    def test_reusable_after_close(self, rng):
        """close() releases the pool; the next solve re-creates it lazily
        and stays bit-identical."""
        problem = random_fixed_problem(rng, 8, 8)
        baseline = solve_fixed(problem)
        kernel = ParallelKernel(workers=2, backend="thread")
        first = solve_fixed(problem, kernel=kernel)
        kernel.close()
        assert kernel._pool is None
        second = solve_fixed(problem, kernel=kernel)
        assert kernel._pool is not None
        kernel.close()
        np.testing.assert_array_equal(first.x, baseline.x)
        np.testing.assert_array_equal(second.x, baseline.x)

    def test_pool_creation_is_lazy(self):
        kernel = ParallelKernel(workers=4, backend="thread")
        assert kernel._pool is None  # nothing forked until first dispatch
        kernel.close()

    def test_process_backend_smoke(self, rng):
        """Process pool gives bit-identical results (slow start-up: one
        small instance only)."""
        problem = random_fixed_problem(rng, 6, 5)
        baseline = solve_fixed(problem)
        with ParallelKernel(workers=2, backend="process") as kernel:
            result = solve_fixed(problem, kernel=kernel)
        np.testing.assert_array_equal(result.x, baseline.x)
