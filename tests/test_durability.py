"""Durability tests: journal, exactly-once recovery, admission, drain.

The headline guarantee of the durability layer is that process death
changes *availability*, never *answers*: killing the service at any
crash point (:data:`repro.service.CRASH_POINTS`) and recovering from
the journal loses no request, answers none twice, and reproduces every
matrix and dual bit-identically to an uninterrupted run.
"""

from __future__ import annotations

import json
import math
import os
import pickle
import signal
import subprocess
import sys
import time

import numpy as np
import pytest
from conftest import random_fixed_problem, random_sam_problem

from repro.core.api import solve
from repro.core.problems import FixedTotalsProblem
from repro.errors import DuplicateRequestError, OverloadedError
from repro.io import problem_to_jsonable
from repro.service import (
    CRASH_POINTS,
    CrashPlan,
    SimulatedCrash,
    SolveService,
)
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.journal import (
    Journal,
    ReplicaJournal,
    derive_request_id,
    replay,
    response_from_record,
    response_to_record,
)
from repro.service.request import SolveRequest, SolveResponse


def infeasible_fixed() -> FixedTotalsProblem:
    """Positive row total with every cell of that row masked out."""
    mask = np.ones((3, 3), dtype=bool)
    mask[0] = False
    mask[1, 0] = True
    return FixedTotalsProblem(
        x0=np.ones((3, 3)),
        gamma=np.ones((3, 3)),
        s0=np.array([5.0, 3.0, 3.0]),
        d0=np.array([4.0, 3.5, 3.5]),
        mask=mask,
    )


def durable_service(journal_path, backend="serial", workers=1, **kw):
    """A journaled service configured for deterministic replay.

    Warm starts and batching are disabled: both change the dual
    trajectory with the *history* of the service, and the bit-identity
    contract is per-request."""
    kw.setdefault("warm_start", False)
    kw.setdefault("batching", False)
    return SolveService(journal=journal_path, backend=backend,
                        workers=workers, **kw)


class TestJournal:
    def test_round_trip_is_bit_identical(self, tmp_path, rng):
        path = tmp_path / "j.jsonl"
        problem = random_fixed_problem(rng, 4, 3)
        result = solve(problem)
        req = SolveRequest(problem=problem, id="r0")
        req._order = 0
        resp = SolveResponse(id="r0", result=result, kind="fixed",
                             elapsed=result.elapsed, submitted_at=0)
        with Journal(path) as j:
            j.append_request(req)
            j.append_response(resp)
        unanswered, recorded = replay(path)
        assert unanswered == []
        got = recorded["r0"].result
        np.testing.assert_array_equal(got.x, result.x)
        np.testing.assert_array_equal(got.s, result.s)
        np.testing.assert_array_equal(got.d, result.d)
        np.testing.assert_array_equal(got.mu, result.mu)
        np.testing.assert_array_equal(got.lam, result.lam)
        assert got.residual == result.residual
        assert got.objective == result.objective

    def test_unanswered_keep_submission_order(self, tmp_path, rng):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            for i in range(3):
                req = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                                   id=f"r{i}")
                req._order = i
                j.append_request(req)
            j.append_response(SolveResponse(id="r1", error="x",
                                            error_kind="internal"))
        unanswered, recorded = replay(path)
        assert [r.id for r in unanswered] == ["r0", "r2"]
        assert [r._order for r in unanswered] == [0, 2]
        assert set(recorded) == {"r1"}

    def test_torn_tail_is_truncated_on_open(self, tmp_path, rng):
        path = tmp_path / "j.jsonl"
        with Journal(path) as j:
            req = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                               id="r0")
            j.append_request(req)
        good_size = path.stat().st_size
        with path.open("a") as fh:
            fh.write('{"type":"response","id":"r0","resp')  # crash mid-write
        j2 = Journal(path)
        try:
            assert path.stat().st_size == good_size  # tail gone
            assert not j2.answered("r0")
            assert j2.pending_ids() == ["r0"]
            # the truncated journal is append-consistent again
            j2.append_response(SolveResponse(id="r0", error="x",
                                             error_kind="internal"))
        finally:
            j2.close()
        assert replay(path)[0] == []

    def test_torn_tail_with_batched_fsync_writer_death(self, tmp_path, rng):
        """``fsync=N`` (N>1) widens the window: a writer SIGKILLed
        mid-record leaves flushed-but-unsynced whole lines *and* a torn
        half-line.  Reopening must keep every whole record (they
        survived mere process death — the flush reached the kernel)
        and truncate exactly the torn tail, then stay append-ready."""
        path = tmp_path / "j.jsonl"
        j = Journal(path, fsync=3)
        for i in range(5):  # 5 records: the last two are unsynced
            req = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                               id=f"r{i}")
            req._order = i
            j.append_request(req)
        assert j._unsynced == 2
        # The writer dies mid-record: no close(), half a line on disk.
        with path.open("a") as fh:
            fh.write('{"type":"request","id":"r5","seq":5,"requ')
        del j  # simulate SIGKILL: the file handle is never flushed again
        j2 = Journal(path, fsync=3)
        try:
            assert j2.lines == 5
            assert j2.pending_ids() == [f"r{i}" for i in range(5)]
            assert "r5" not in j2
            req = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                               id="r5")
            req._order = 5
            j2.append_request(req)
            assert j2.lines == 6
        finally:
            j2.close()
        unanswered, _ = replay(path)
        assert [r.id for r in unanswered] == [f"r{i}" for i in range(6)]

    def test_duplicate_id_refused(self, tmp_path, rng):
        path = tmp_path / "j.jsonl"
        req = SolveRequest(problem=random_fixed_problem(rng, 3, 3), id="r0")
        with Journal(path) as j:
            j.append_request(req)
            with pytest.raises(DuplicateRequestError, match="pending"):
                j.append_request(req)
        # ... and across a reopen: the index is rebuilt from disk
        with Journal(path) as j2:
            assert "r0" in j2
            with pytest.raises(DuplicateRequestError):
                j2.append_request(req)

    def test_fsync_interval_validation(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            Journal(tmp_path / "j.jsonl", fsync=-1)

    def test_fsync_every_n_records(self, tmp_path, rng, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (synced.append(fd), real_fsync(fd))[1])
        path = tmp_path / "j.jsonl"
        j = Journal(path, fsync=2)
        try:
            for i in range(4):
                req = SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                                   id=f"r{i}")
                j.append_request(req)
            assert len(synced) == 2  # records 2 and 4
        finally:
            j.close()

    def test_derived_ids_stable_and_distinct(self, rng):
        problem = random_fixed_problem(rng, 3, 3)
        req = SolveRequest(problem=problem)
        assert derive_request_id(req, 0) == derive_request_id(req, 0)
        # identical payloads stay distinct via the journal-global seq
        assert derive_request_id(req, 0) != derive_request_id(req, 1)
        # ... which is what keeps ids unique across a restart
        other = SolveRequest(problem=random_fixed_problem(rng, 3, 3))
        assert derive_request_id(req, 5) != derive_request_id(other, 5)

    def test_nonfinite_floats_survive_the_record(self):
        resp = SolveResponse(id="r0", error="boom", error_kind="internal",
                             elapsed=float("inf"), submitted_at=3)
        rec = response_from_record(
            json.loads(json.dumps(response_to_record(resp)))
        )
        assert math.isinf(rec.elapsed)
        assert rec.error_kind == "internal" and rec.submitted_at == 3


class TestReplicaJournal:
    """The router-side replica of a shipped remote WAL shares the
    journal's torn-tail and fsync discipline — same file format, same
    crash-consistency, byte-for-byte appends."""

    def _line(self, rng, rid, seq=0, answered=False):
        req = SolveRequest(problem=random_fixed_problem(rng, 3, 3), id=rid)
        req._order = seq
        if answered:
            from repro.service.journal import response_to_record
            return json.dumps({"type": "response", "id": rid,
                               "response": response_to_record(
                                   SolveResponse(id=rid, error="x",
                                                 error_kind="internal"))},
                              separators=(",", ":"))
        from repro.service.wire import request_to_jsonable
        return json.dumps({"type": "request", "id": rid, "seq": seq,
                           "request": request_to_jsonable(req)},
                          separators=(",", ":"))

    def test_append_line_is_byte_for_byte_and_indexed(self, tmp_path, rng):
        path = tmp_path / "replica.journal"
        lines = [self._line(rng, "r0"), self._line(rng, "r0", answered=True)]
        with ReplicaJournal(path, fsync=1) as rep:
            for line in lines:
                rep.append_line(line)
            assert rep.lines == 2 and rep.request_records == 1
            assert "r0" in rep and rep.answered("r0")
        assert path.read_text() == "".join(line + "\n" for line in lines)
        # The replica replays exactly like a journal (same format).
        unanswered, recorded = replay(path)
        assert unanswered == [] and set(recorded) == {"r0"}

    def test_corrupt_ship_is_rejected_before_the_write(self, tmp_path, rng):
        path = tmp_path / "replica.journal"
        with ReplicaJournal(path) as rep:
            rep.append_line(self._line(rng, "r0"))
            for bad in ('{"type":"request","id"', '"not-a-record"', "[1,2]",
                        '{"no":"type"}'):
                with pytest.raises(ValueError):
                    rep.append_line(bad)
            assert rep.lines == 1
        # Nothing but the good line reached the disk.
        assert path.read_text().count("\n") == 1

    def test_torn_tail_truncated_under_batched_fsync(self, tmp_path, rng):
        """The replica writer dying mid-append under ``fsync=N`` must
        reopen append-consistent at the last whole record — the
        ``lines`` cursor is the reconnect ``have`` the router sends, so
        an overcount would make catch-up skip shipped records."""
        path = tmp_path / "replica.journal"
        rep = ReplicaJournal(path, fsync=4)
        for i in range(3):
            rep.append_line(self._line(rng, f"r{i}", seq=i))
        with path.open("a") as fh:
            fh.write('{"type":"response","id":"r2","resp')  # torn mid-ship
        del rep  # writer dies; never closed
        rep2 = ReplicaJournal(path, fsync=4)
        try:
            assert rep2.lines == 3
            assert not rep2.answered("r2")
            # Catch-up resumes exactly at the cursor.
            rep2.append_line(self._line(rng, "r2", answered=True))
            assert rep2.lines == 4 and rep2.answered("r2")
        finally:
            rep2.close()


class TestAdmission:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionConfig(policy="drop-everything")
        with pytest.raises(ValueError, match="max_queue"):
            AdmissionConfig(max_queue=0)
        with pytest.raises(ValueError, match="max_per_kind"):
            AdmissionConfig(max_per_kind=0)
        assert not AdmissionConfig().bounded
        assert AdmissionConfig(max_queue=4).bounded

    def test_kind_limit_fires_before_queue_limit(self):
        ctl = AdmissionController(
            AdmissionConfig(max_queue=10, max_per_kind=2,
                            policy="shed-oldest")
        )
        assert ctl.decide("fixed", 2, 2) == ("shed", "kind")
        assert ctl.decide("fixed", 10, 1) == ("shed", "queue")
        assert ctl.decide("fixed", 2, 1) == ("accept", None)

    def test_reject_newest_raises_overloaded(self, rng):
        with SolveService(max_queue=2, admission_policy="reject-newest",
                          warm_start=False) as svc:
            svc.submit(random_fixed_problem(rng, 3, 3))
            svc.submit(random_fixed_problem(rng, 3, 3))
            with pytest.raises(OverloadedError, match="reject-newest"):
                svc.submit(random_fixed_problem(rng, 3, 3))
            assert svc.pending == 2  # queue untouched
            responses = svc.drain()
        assert all(r.ok for r in responses)
        stats = svc.stats()
        assert stats.overload_rejections == 1
        assert stats.requests == 2  # the rejected one was never accepted

    def test_shed_oldest_answers_the_victim(self, rng):
        with SolveService(max_queue=2, admission_policy="shed-oldest",
                          warm_start=False) as svc:
            svc.submit(random_fixed_problem(rng, 3, 3))  # req-0: the victim
            svc.submit(random_fixed_problem(rng, 3, 3))
            svc.submit(random_fixed_problem(rng, 3, 3))  # sheds req-0
            assert svc.pending == 2
            drained = svc.drain()
            shed = svc.collect()
        assert [r.id for r in shed] == ["req-0"]
        assert shed[0].error_kind == "overloaded"
        assert all(r.ok for r in drained)
        assert svc.stats().overload_sheds == 1

    def test_block_applies_backpressure(self, rng):
        with SolveService(max_queue=2, admission_policy="block",
                          warm_start=False) as svc:
            svc.submit(random_fixed_problem(rng, 3, 3))
            svc.submit(random_fixed_problem(rng, 3, 3))
            svc.submit(random_fixed_problem(rng, 3, 3))  # drains inline
            assert svc.pending == 1  # room was made, nothing lost
            early = svc.collect()
            late = svc.drain()
        assert len(early) == 2 and all(r.ok for r in early)
        assert len(late) == 1 and late[0].ok
        assert svc.stats().admission_blocks == 1
        assert svc.stats().overload_sheds == 0

    def test_per_kind_fair_share(self, rng):
        with SolveService(max_per_kind=1, admission_policy="reject-newest",
                          warm_start=False) as svc:
            svc.submit(random_fixed_problem(rng, 3, 3))
            with pytest.raises(OverloadedError, match="kind"):
                svc.submit(random_fixed_problem(rng, 4, 4))
            # another kind still has its share of the queue
            svc.submit(random_sam_problem(rng, 3))
            responses = svc.drain()
        assert len(responses) == 2

    def test_shed_victim_is_not_replayed(self, tmp_path, rng):
        """A shed is an answer: recovery must not re-solve the victim."""
        path = tmp_path / "j.jsonl"
        with durable_service(path, max_queue=1,
                             admission_policy="shed-oldest") as svc:
            svc.submit(SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                                    id="old"))
            svc.submit(SolveRequest(problem=random_fixed_problem(rng, 3, 3),
                                    id="new"))  # sheds "old"
        # crash here: only the journal survives
        unanswered, recorded = replay(path)
        assert [r.id for r in unanswered] == ["new"]
        assert recorded["old"].error_kind == "overloaded"

    def test_draining_service_rejects_submissions(self, rng):
        svc = SolveService(warm_start=False)
        svc.submit(random_fixed_problem(rng, 3, 3))
        drained = svc.shutdown()
        assert len(drained) == 1 and drained[0].ok
        with pytest.raises(OverloadedError, match="draining"):
            svc.submit(random_fixed_problem(rng, 3, 3))
        assert svc.stats().drained_on_shutdown == 1


class TestCompletedBuffer:
    def test_eviction_under_cap(self, rng):
        with SolveService(completed_buffer=2, warm_start=False) as svc:
            for _ in range(4):
                svc.submit(random_fixed_problem(rng, 3, 3))
            # solve() drains everything; the other 4 responses must fit
            # a 2-slot buffer
            mine = svc.solve(random_fixed_problem(rng, 3, 3))
            kept = svc.collect()
        assert mine.ok
        assert len(kept) == 2
        assert svc.stats().completed_evictions == 2
        # the *newest* undelivered responses are the ones kept
        assert [r.id for r in kept] == ["req-2", "req-3"]


class TestSnapshot:
    def test_warm_state_round_trip(self, tmp_path, rng):
        snap = tmp_path / "warm.pkl"
        problem = random_fixed_problem(rng, 6, 5)
        with SolveService(snapshot_path=snap) as svc:
            cold = svc.solve(problem)
        assert cold.ok and not cold.warm_started
        assert snap.exists()
        assert svc.stats().snapshots_written == 1
        with SolveService(snapshot_path=snap) as svc2:
            warm = svc2.solve(problem)
        assert warm.warm_started and warm.cache_exact
        # a warm start changes the dual trajectory, so agreement is to
        # solver tolerance, not bitwise
        np.testing.assert_allclose(warm.result.x, cold.result.x, rtol=1e-3)

    def test_breaker_state_survives_restart(self, tmp_path):
        snap = tmp_path / "warm.pkl"
        with SolveService(snapshot_path=snap, breaker_threshold=1,
                          breaker_cooldown=50, warm_start=False) as svc:
            assert svc.solve(infeasible_fixed()).error_kind == "infeasible"
        with SolveService(snapshot_path=snap, breaker_threshold=1,
                          breaker_cooldown=50, warm_start=False) as svc2:
            resp = svc2.solve(infeasible_fixed())
        # the restarted service remembers the open breaker
        assert resp.error_kind == "circuit-open"

    def test_unknown_version_is_ignored(self, tmp_path, rng):
        snap = tmp_path / "warm.pkl"
        snap.write_bytes(pickle.dumps({"version": 999, "cache": [],
                                       "breakers": []}))
        with SolveService(snapshot_path=snap) as svc:
            assert not svc.restore_snapshot()
            resp = svc.solve(random_fixed_problem(rng, 3, 3))
        assert resp.ok and not resp.warm_started

    def test_periodic_snapshots(self, tmp_path, rng):
        snap = tmp_path / "warm.pkl"
        with SolveService(snapshot_path=snap, snapshot_every=2) as svc:
            svc.solve(random_fixed_problem(rng, 3, 3))
            assert not snap.exists()  # below the interval
            svc.solve(random_fixed_problem(rng, 3, 3))
            assert snap.exists()  # written mid-flight, before close()
        assert svc.stats().snapshots_written == 2  # interval + close


class TestCrashRecovery:
    """The chaos matrix: kill at every crash point, recover, and prove
    exactly-once delivery with bit-identical answers."""

    N = 5

    def _traffic(self, seed=7):
        rng = np.random.default_rng(seed)
        return [random_fixed_problem(rng, 4, 4) for _ in range(self.N)]

    def _crash_run(self, journal, point, after, backend="serial", workers=1):
        """Run journaled traffic until the injected process death; the
        journal file is all that survives."""
        problems = self._traffic()
        svc = durable_service(journal, backend=backend, workers=workers)
        svc.crash_plan = CrashPlan(point, after=after)
        try:
            for i, p in enumerate(problems):
                svc.submit(SolveRequest(problem=p, id=f"r{i}"))
            if point == "kill-mid-drain":
                svc.shutdown()
            else:
                svc.drain()
        except SimulatedCrash:
            pass
        else:  # pragma: no cover — the plan must fire for a chaos run
            raise AssertionError(f"crash point {point} never fired")
        # abandon the service object like SIGKILL would abandon the
        # process; only release the worker pool so the test run stays
        # clean (a real kill reaps it with the process)
        svc.kernel.close()
        return problems

    def _assert_exactly_once(self, journal, problems, backend="serial",
                             workers=1):
        baselines = {f"r{i}": solve(p) for i, p in enumerate(problems)}
        svc = SolveService.recover(journal, warm_start=False, batching=False,
                                   backend=backend, workers=workers)
        with svc:
            replayed = {r.id: r for r in svc.drain()}
        recorded = svc.recovered
        journaled = set(recorded) | set(replayed)
        # no request lost: everything that was accepted gets answered
        assert journaled == {
            rid for rid in baselines if rid in svc.journal
        }
        # none answered twice: recovery re-solves only unanswered ids
        assert not (set(recorded) & set(replayed))
        stats = svc.stats()
        assert stats.journal_replayed == len(replayed)
        assert stats.journal_recovered == len(recorded)
        # bit-identical answers, whether recorded or replayed
        for rid in journaled:
            resp = recorded.get(rid) or replayed[rid]
            if resp.error_kind == "overloaded":  # shed, never solved
                continue
            base = baselines[rid]
            assert resp.ok, f"{rid}: {resp.error}"
            np.testing.assert_array_equal(resp.result.x, base.x)
            np.testing.assert_array_equal(resp.result.s, base.s)
            np.testing.assert_array_equal(resp.result.d, base.d)
            np.testing.assert_array_equal(resp.result.mu, base.mu)
        # the journal now shows nothing pending
        assert svc.journal.pending_ids() == []
        return recorded, replayed

    @pytest.mark.parametrize("point", CRASH_POINTS)
    @pytest.mark.parametrize("after", [0, 2])
    def test_kill_and_restart_serial(self, tmp_path, point, after):
        journal = tmp_path / "j.jsonl"
        problems = self._crash_run(journal, point, after)
        recorded, replayed = self._assert_exactly_once(journal, problems)
        if point == "kill-after-journal":
            # death before any solve: the whole accepted prefix replays
            assert recorded == {} and len(replayed) == after + 1
        elif point == "kill-before-response":
            # the first `after` responses were journaled; the rest —
            # including the solved-but-unjournaled one — replay
            assert len(recorded) == after
            assert len(replayed) == self.N - after
        else:  # kill-mid-drain
            assert len(recorded) == after
            assert len(replayed) == self.N - after

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_kill_and_restart_thread(self, tmp_path, point):
        journal = tmp_path / "j.jsonl"
        problems = self._crash_run(journal, point, 1, backend="thread",
                                   workers=2)
        self._assert_exactly_once(journal, problems, backend="thread",
                                  workers=2)

    def test_double_crash_then_recover(self, tmp_path):
        """Crash, recover, crash during the replay, recover again."""
        journal = tmp_path / "j.jsonl"
        problems = self._crash_run(journal, "kill-before-response", 1)
        svc = SolveService.recover(journal, warm_start=False, batching=False)
        svc.crash_plan = CrashPlan("kill-before-response", after=1)
        with pytest.raises(SimulatedCrash):
            svc.drain()
        svc.kernel.close()
        self._assert_exactly_once(journal, problems)


@pytest.mark.slow
class TestProcessCrashAcceptance:
    """The acceptance run on the process backend: every crash point,
    workers killed and restarted, answers bit-identical."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_kill_and_restart_process(self, tmp_path, point):
        journal = tmp_path / "j.jsonl"
        harness = TestCrashRecovery()
        problems = harness._crash_run(journal, point, 1, backend="process",
                                      workers=2)
        harness._assert_exactly_once(journal, problems, backend="process",
                                     workers=2)


class TestWarmRestart:
    def test_journaled_warm_restart_beats_cold(self, tmp_path):
        """A restarted service with a snapshot reuses duals *and* sort
        permutations: sort_reuse_rate > 0 and fewer sweeps/iterations
        than the same traffic on a cold restart."""
        rng = np.random.default_rng(42)
        base = random_fixed_problem(rng, 12, 10)

        def perturbed(k):
            # same structure (= same fingerprint bucket), nearby totals
            scale = 1.0 + 0.004 * (k + 1)
            return FixedTotalsProblem(
                x0=base.x0, gamma=base.gamma, s0=base.s0 * scale,
                d0=base.d0 * scale, mask=base.mask,
            )

        snap = tmp_path / "warm.pkl"
        with SolveService(journal=tmp_path / "j1.jsonl", snapshot_path=snap,
                          batching=False) as svc:
            for k in range(4):
                assert svc.solve(perturbed(k)).ok

        follow_up = [perturbed(k) for k in range(4, 8)]

        with SolveService(journal=tmp_path / "j2.jsonl", snapshot_path=snap,
                          batching=False) as warm_svc:
            warm_first = warm_svc.solve(follow_up[0])
            for p in follow_up[1:]:
                assert warm_svc.solve(p).ok
        warm_stats = warm_svc.stats()

        with SolveService(journal=tmp_path / "j3.jsonl",
                          batching=False) as cold_svc:
            for p in follow_up:
                assert cold_svc.solve(p).ok
        cold_stats = cold_svc.stats()

        # the very first post-restart solve is already warm
        assert warm_first.warm_started
        assert warm_stats.sort_reuse_rate > 0.0
        assert warm_stats.total_iterations < cold_stats.total_iterations
        assert warm_stats.sort_sweeps < cold_stats.sort_sweeps


def _request_lines(n, seed=3, ids=True):
    rng = np.random.default_rng(seed)
    lines = []
    for i in range(n):
        problem = random_fixed_problem(rng, 4, 3)
        obj = {"problem": problem_to_jsonable(problem)}
        if ids:
            obj["id"] = f"r{i}"
        lines.append(json.dumps(obj))
    return lines


def _env():
    import pathlib

    import repro
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _serve(extra, tmp_path, stdin=subprocess.PIPE):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--jsonl", *extra],
        stdin=stdin, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=_env(), text=True, cwd=tmp_path,
    )


def _wait_for_journal(path, records, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists() and len(path.read_text().splitlines()) >= records:
            return
        time.sleep(0.05)
    raise AssertionError(f"journal never reached {records} records")


class TestServeDurabilityCLI:
    """End-to-end ``python -m repro serve`` durability (subprocess)."""

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        proc = _serve(["--journal", str(journal), "--drain-deadline", "30"],
                      tmp_path)
        lines = _request_lines(2)
        proc.stdin.write("\n".join(lines) + "\n")
        proc.stdin.flush()
        # the requests are queued (window 32) once they hit the journal
        _wait_for_journal(journal, 2)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        responses = [json.loads(line) for line in out.splitlines()]
        assert {r["id"] for r in responses} == {"r0", "r1"}
        assert all(r["status"] == "ok" for r in responses)
        # the graceful drain journaled its answers too
        assert replay(journal)[0] == []

    def test_sigkill_then_recover_replays_exactly_once(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        proc = _serve(["--journal", str(journal), "--fsync", "1"], tmp_path)
        lines = _request_lines(3)
        proc.stdin.write("\n".join(lines) + "\n")
        proc.stdin.flush()
        _wait_for_journal(journal, 3)
        proc.kill()  # SIGKILL: no drain, no journal sync, nothing
        proc.wait(timeout=30)

        done = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--jsonl",
             "--journal", str(journal), "--recover",
             "--input", os.devnull],
            capture_output=True, text=True, timeout=120, cwd=tmp_path,
            env=_env(),
        )
        assert done.returncode == 0, done.stderr
        responses = [json.loads(line) for line in done.stdout.splitlines()]
        assert {r["id"] for r in responses} == {"r0", "r1", "r2"}
        assert all(r["status"] == "ok" for r in responses)
        # a second recovery finds nothing pending: exactly once
        again = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--jsonl",
             "--journal", str(journal), "--recover",
             "--input", os.devnull],
            capture_output=True, text=True, timeout=120, cwd=tmp_path,
            env=_env(),
        )
        assert again.returncode == 0 and again.stdout == ""

    def test_recover_requires_journal(self):
        from repro.cli import main
        with pytest.raises(SystemExit, match="--recover"):
            main(["serve", "--jsonl", "--recover",
                  "--input", os.devnull])

    def test_overload_answers_in_stream(self, tmp_path):
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text("\n".join(_request_lines(3)) + "\n")
        out = tmp_path / "out.jsonl"
        from repro.cli import main
        code = main(["serve", "--jsonl", "--input", str(reqs),
                     "--output", str(out), "--max-queue", "1",
                     "--admission", "reject-newest", "--window", "100"])
        assert code == 1  # overload errors surface in the exit code
        responses = [json.loads(line) for line in
                     out.read_text().splitlines()]
        by_status = {}
        for r in responses:
            by_status.setdefault(r["status"], []).append(r)
        # r1 was rejected (and the rejection flushed r0, making room
        # for r2): two answered, one structured overload error
        assert len(by_status["ok"]) == 2
        assert len(by_status["error"]) == 1
        assert by_status["error"][0]["error"]["kind"] == "overloaded"

    def test_duplicate_id_answers_in_stream(self, tmp_path):
        lines = _request_lines(2)
        dup = json.loads(lines[1])
        dup["id"] = "r0"  # collides with the first request
        reqs = tmp_path / "reqs.jsonl"
        reqs.write_text(lines[0] + "\n" + json.dumps(dup) + "\n")
        out = tmp_path / "out.jsonl"
        from repro.cli import main
        code = main(["serve", "--jsonl", "--input", str(reqs),
                     "--output", str(out),
                     "--journal", str(tmp_path / "j.jsonl")])
        assert code == 1
        responses = [json.loads(line) for line in
                     out.read_text().splitlines()]
        kinds = [r.get("error", {}).get("kind") for r in responses]
        assert kinds.count("duplicate-request") == 1
