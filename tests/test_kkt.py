"""KKT verification module: correct detection of optimal and non-optimal points."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.convergence import StoppingRule
from repro.core.kkt import kkt_violations, max_kkt_violation
from repro.core.problems import ElasticProblem, SAMProblem
from repro.core.sea import solve_elastic, solve_fixed, solve_sam

TIGHT = StoppingRule(eps=1e-9, max_iterations=10_000)


class TestDetection:
    def test_optimal_point_passes(self, rng):
        problem = random_fixed_problem(rng, 5, 5)
        result = solve_fixed(problem, stop=TIGHT)
        assert max_kkt_violation(problem, result) < 1e-5 * problem.s0.max()

    def test_perturbed_point_fails(self, rng):
        problem = random_fixed_problem(rng, 5, 5)
        result = solve_fixed(problem, stop=TIGHT)
        x_bad = result.x.copy()
        x_bad[0, 0] += 1.0
        x_bad[0, 1] -= 1.0  # keep the row sum, break stationarity
        v = kkt_violations(problem, x_bad, result.lam, result.mu)
        assert v["stationarity"] > 0.1 or v["col"] > 0.1

    def test_infeasible_point_flagged(self, rng):
        problem = random_fixed_problem(rng, 4, 4)
        x = np.zeros((4, 4))
        v = kkt_violations(problem, x, np.zeros(4), np.zeros(4))
        assert v["row"] > 0

    def test_negative_flows_flagged(self, rng):
        problem = random_fixed_problem(rng, 3, 3)
        x = np.full((3, 3), -1.0)
        v = kkt_violations(problem, x, np.zeros(3), np.zeros(3))
        assert v["nonneg"] == pytest.approx(1.0)


class TestModelSpecific:
    def test_elastic_requires_totals(self, rng):
        problem = ElasticProblem(
            x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
            s0=np.ones(2), d0=np.ones(2),
            alpha=np.ones(2), beta=np.ones(2),
        )
        with pytest.raises(ValueError, match="elastic"):
            kkt_violations(problem, np.ones((2, 2)), np.zeros(2), np.zeros(2))

    def test_sam_requires_totals(self):
        problem = SAMProblem(
            x0=np.ones((2, 2)), gamma=np.ones((2, 2)),
            s0=np.ones(2), alpha=np.ones(2),
        )
        with pytest.raises(ValueError, match="SAM"):
            kkt_violations(problem, np.ones((2, 2)), np.zeros(2), np.zeros(2))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            kkt_violations(object(), np.ones((1, 1)), np.zeros(1), np.zeros(1))

    def test_max_violation_elastic_and_sam(self, rng):
        from conftest import random_elastic_problem, random_sam_problem

        e = random_elastic_problem(rng, 4, 4)
        re_ = solve_elastic(e, stop=TIGHT)
        assert max_kkt_violation(e, re_) < 1e-5 * e.s0.max()

        s = random_sam_problem(rng, 4)
        rs = solve_sam(s, stop=StoppingRule(eps=1e-10, criterion="imbalance",
                                            max_iterations=10_000))
        assert max_kkt_violation(s, rs) < 1e-5 * s.s0.max()
