"""3-D constrained cubes and multi-period projection."""

import numpy as np
import pytest

from repro.core.convergence import StoppingRule
from repro.extensions.three_dim import (
    ThreeWayProblem,
    solve_three_way,
    tri_proportional_fit,
)
from repro.multiperiod import MultiPeriodResult, ProjectionPeriod, project_flows

TIGHT = StoppingRule(eps=1e-9, max_iterations=20_000)


def _cube_problem(rng, m=4, n=5, p=3):
    x0 = rng.uniform(1.0, 20.0, (m, n, p))
    # Feasible heterogeneous totals from a random witness cube.
    witness = x0 * rng.uniform(0.5, 1.8, (m, n, p))
    return ThreeWayProblem(
        x0=x0,
        gamma=rng.uniform(0.5, 3.0, (m, n, p)),
        a=witness.sum(axis=(1, 2)),
        b=witness.sum(axis=(0, 2)),
        c=witness.sum(axis=(0, 1)),
    )


class TestThreeWay:
    def test_all_three_families_satisfied(self, rng):
        problem = _cube_problem(rng)
        result = solve_three_way(problem, stop=TIGHT)
        assert result.converged
        res = problem.residuals(result.x)
        scale = problem.a.max()
        # The last-equilibrated family is exact; the others near-exact.
        assert res["commodity"] < 1e-9 * scale
        assert res["origin"] < 1e-6 * scale
        assert res["destination"] < 1e-6 * scale
        assert np.all(result.x >= 0)

    def test_kkt_of_cube(self, rng):
        """Full 3-D stationarity: 2 gamma (x - x0) = lam + mu + nu on
        positive cells, >= on zero cells (nu recovered from a positive
        commodity slab)."""
        problem = _cube_problem(rng, 3, 4, 3)
        result = solve_three_way(problem, stop=TIGHT)
        grad = 2.0 * problem.gamma * (result.x - problem.x0)
        partial = result.lam[:, None, None] + result.mu[None, :, None]
        # Recover nu from any strictly positive cell per slab.
        nu = np.empty(problem.shape[2])
        for k in range(problem.shape[2]):
            slab = result.x[:, :, k]
            i, j = np.unravel_index(np.argmax(slab), slab.shape)
            nu[k] = grad[i, j, k] - partial[i, j, 0] + 0.0 - (
                result.mu[j] - result.mu[j]
            )
            nu[k] = grad[i, j, k] - result.lam[i] - result.mu[j]
        reduced = grad - partial - nu[None, None, :]
        scale = float(np.abs(grad).max()) + 1.0
        positive = result.x > 1e-8 * problem.x0.max()
        assert np.max(np.abs(reduced[positive])) < 1e-6 * scale
        assert np.min(reduced[~positive], initial=0.0) > -1e-6 * scale

    def test_feasible_base_is_fixed_point(self, rng):
        x0 = rng.uniform(1.0, 10.0, (3, 3, 3))
        problem = ThreeWayProblem(
            x0=x0, gamma=np.ones_like(x0),
            a=x0.sum(axis=(1, 2)), b=x0.sum(axis=(0, 2)), c=x0.sum(axis=(0, 1)),
        )
        result = solve_three_way(problem, stop=TIGHT)
        np.testing.assert_allclose(result.x, x0, atol=1e-8 * x0.max())

    def test_mismatched_grand_totals_rejected(self, rng):
        x0 = np.ones((2, 2, 2))
        with pytest.raises(ValueError, match="grand total"):
            ThreeWayProblem(
                x0=x0, gamma=np.ones_like(x0),
                a=np.array([4.0, 4.0]), b=np.array([4.0, 4.0]),
                c=np.array([5.0, 5.0]),
            )

    def test_degenerates_to_2d_when_p_is_1(self, rng):
        """A 1-deep cube with commodity total = grand total is the 2-D
        problem; compare against the 2-D solver."""
        from repro.core.problems import FixedTotalsProblem
        from repro.core.sea import solve_fixed

        x0_2d = rng.uniform(1.0, 10.0, (4, 4))
        witness = x0_2d * rng.uniform(0.5, 1.5, (4, 4))
        s0 = witness.sum(axis=1)
        d0 = witness.sum(axis=0)
        gamma_2d = rng.uniform(0.5, 2.0, (4, 4))
        cube = ThreeWayProblem(
            x0=x0_2d[:, :, None], gamma=gamma_2d[:, :, None],
            a=s0, b=d0, c=np.array([s0.sum()]),
        )
        flat = FixedTotalsProblem(x0=x0_2d, gamma=gamma_2d, s0=s0, d0=d0)
        r3 = solve_three_way(cube, stop=TIGHT)
        r2 = solve_fixed(flat, stop=TIGHT)
        np.testing.assert_allclose(
            r3.x[:, :, 0], r2.x, atol=1e-6 * s0.max()
        )

    def test_ipf_cube(self, rng):
        x0 = rng.uniform(1.0, 10.0, (4, 4, 4))
        witness = x0 * rng.uniform(0.5, 1.5, (4, 4, 4))
        a = witness.sum(axis=(1, 2))
        b = witness.sum(axis=(0, 2))
        c = witness.sum(axis=(0, 1))
        x, converged, _ = tri_proportional_fit(x0, a, b, c)
        assert converged
        np.testing.assert_allclose(x.sum(axis=(1, 2)), a, rtol=1e-6)
        np.testing.assert_allclose(x.sum(axis=(0, 1)), c, rtol=1e-6)

    def test_sea3d_and_ipf_agree_on_feasibility_not_values(self, rng):
        problem = _cube_problem(rng, 3, 3, 3)
        sea = solve_three_way(problem, stop=TIGHT)
        ipf, converged, _ = tri_proportional_fit(
            problem.x0, problem.a, problem.b, problem.c
        )
        assert converged
        # Different objectives -> different cubes, same constraints.
        assert problem.objective(sea.x) <= problem.objective(ipf) + 1e-9


class TestMultiPeriod:
    def _base(self, rng, n=6):
        flows = rng.uniform(100.0, 5000.0, (n, n))
        np.fill_diagonal(flows, 0.0)
        pop = rng.uniform(1e5, 1e6, n)
        return flows, pop

    def test_population_accounting(self, rng):
        flows, pop = self._base(rng)
        result = project_flows(
            flows, pop,
            [ProjectionPeriod(out_growth=1.05, in_growth=1.05, label="p1"),
             ProjectionPeriod(out_growth=1.02, in_growth=1.02, label="p2")],
        )
        assert result.converged
        assert len(result.flows) == 2
        # Closed system: total population conserved.
        for p in result.populations:
            assert p.sum() == pytest.approx(pop.sum(), rel=1e-9)
        # Per-region accounting identity.
        np.testing.assert_allclose(
            result.populations[1],
            pop - result.flows[0].sum(axis=1) + result.flows[0].sum(axis=0),
        )

    def test_growth_scenario_raises_mobility(self, rng):
        flows, pop = self._base(rng)
        low = project_flows(flows, pop, [ProjectionPeriod(1.0, 1.0)])
        high = project_flows(flows, pop, [ProjectionPeriod(1.5, 1.5)])
        assert high.total_movers()[0] > low.total_movers()[0]

    def test_asymmetric_growth_shifts_population(self, rng):
        flows, pop = self._base(rng, n=4)
        out_g = np.array([1.5, 1.0, 1.0, 1.0])  # region 0 empties out
        in_g = np.array([0.8, 1.1, 1.1, 1.1])
        result = project_flows(flows, pop, [ProjectionPeriod(out_g, in_g)])
        assert result.populations[1][0] < pop[0]

    def test_diagonal_stays_zero(self, rng):
        flows, pop = self._base(rng)
        result = project_flows(flows, pop, [ProjectionPeriod(1.1, 1.1)])
        assert np.all(np.diag(result.flows[0]) == 0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="square"):
            project_flows(np.ones((2, 3)), np.ones(2), [ProjectionPeriod()])
        with pytest.raises(ValueError, match="populations"):
            project_flows(np.ones((2, 2)), np.ones(3), [ProjectionPeriod()])

    def test_empty_period_list(self, rng):
        flows, pop = self._base(rng)
        result = project_flows(flows, pop, [])
        assert isinstance(result, MultiPeriodResult)
        assert result.flows == []
