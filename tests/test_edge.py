"""The asyncio TCP edge: pipelining, ordering, backpressure, chaos.

In-process tests drive :class:`repro.edge.EdgeServer` directly on an
event loop (port 0, real sockets on loopback); the chaos tests run the
full ``python -m repro serve --tcp`` CLI in a subprocess and kill it
mid-pipeline.  The invariants under test are the edge's contract:

* the k-th response line answers the k-th request line, per connection;
* request ids are connection-scoped (two clients may both use ``"r1"``);
* deadlines are measured from socket arrival, so time spent queued in
  the edge counts against the budget;
* under the ``block`` policy the service queue never exceeds its bound
  — the burst is absorbed by ``pause_reading`` backpressure;
* no request is ever lost or double-answered, not by a client
  disconnect mid-pipeline and not by a SIGTERM drain.
"""

import asyncio
import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.edge import EdgeClient, EdgeServer
from repro.io import problem_to_jsonable
from repro.service import SolveService
from repro.service.journal import replay
from repro.service.request import SolveRequest
from repro.service.wire import request_to_jsonable


def _line(problem, rid=None, **options) -> dict:
    return request_to_jsonable(
        SolveRequest(problem=problem, id=rid, **options)
    )


async def _start(svc, **kw) -> EdgeServer:
    server = EdgeServer(svc, port=0, **kw)
    await server.start()
    return server


class TestRoundTrip:
    def test_matches_direct_solve(self, rng):
        problem = random_fixed_problem(rng, 5, 4)
        direct = SolveService().solve(problem)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    resp = await client.request(_line(problem, "r1"))
                await server.close()
            return resp

        resp = asyncio.run(scenario())
        assert resp["id"] == "r1" and resp["status"] == "ok"
        assert resp["converged"]
        np.testing.assert_allclose(
            np.array(resp["x"]), direct.result.x, rtol=1e-8
        )

    def test_pipelined_responses_arrive_in_request_order(self, rng):
        problems = [random_fixed_problem(rng, 3 + i % 4, 3)
                    for i in range(9)]

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=3)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    for i, p in enumerate(problems):
                        await client.send(_line(p, f"r{i}"))
                    got = [await client.recv() for _ in problems]
                await server.close()
            return got

        got = asyncio.run(scenario())
        assert [r["id"] for r in got] == [f"r{i}" for i in range(9)]
        assert all(r["status"] == "ok" for r in got)
        for resp, problem in zip(got, problems):
            assert np.array(resp["x"]).shape == problem.x0.shape

    def test_malformed_and_oversized_frames_answer_in_order(self, rng):
        small = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1, max_line_bytes=2_000)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.send(_line(small, "a"))
                    # An oversized frame (well past max_line_bytes) is
                    # answered without ever being buffered or decoded.
                    await client.send_raw("x" * 10_000)
                    await client.send_raw("{not json")
                    await client.send_raw("")  # blank keepalive: no reply
                    await client.send(_line(small, "b"))
                    got = [await client.recv() for _ in range(4)]
                stats = server.stats
                await server.close()
            return got, stats

        got, stats = asyncio.run(scenario())
        assert [r["status"] for r in got] == ["ok", "error", "error", "ok"]
        assert got[0]["id"] == "a" and got[3]["id"] == "b"
        assert "exceeds" in got[1]["error"]["message"]
        assert got[1]["error"]["kind"] == "invalid-request"
        assert got[2]["error"]["kind"] == "invalid-request"
        # Line numbers in errors count physical wire lines.
        assert got[1]["line"] == 2 and got[2]["line"] == 3
        assert stats.edge_errors == 2 and stats.requests == 2

    def test_duplicate_inflight_id_answers_structured_error(self, rng):
        """Reusing an id while the first use is still in flight is
        refused at the edge — a journal-less service would otherwise
        accept it and the connection's ordering would stall forever."""
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=64, flush_interval=0.01)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    await client.send(_line(problem, "dup"))
                    await client.send(_line(problem, "dup"))
                    got = [await client.recv() for _ in range(2)]
                await server.close()
            return got

        first, second = asyncio.run(scenario())
        assert first["id"] == "dup" and first["status"] == "ok"
        assert second["status"] == "error"
        assert second["error"]["kind"] == "duplicate-request"
        assert second["id"] == "dup"


class TestNamespacing:
    def test_same_id_on_two_connections(self, rng, tmp_path):
        """Two clients both call their request ``"a"``; each gets its
        own answer and the journal keeps the ids apart."""
        journal = tmp_path / "edge.journal"
        p_small = random_fixed_problem(rng, 3, 3)
        p_big = random_fixed_problem(rng, 6, 5)

        async def scenario():
            with SolveService(journal=journal) as svc:
                server = await _start(svc, window=1)
                c1 = await EdgeClient.connect("127.0.0.1", server.port)
                c2 = await EdgeClient.connect("127.0.0.1", server.port)
                r1 = await c1.request(_line(p_small, "a"))
                r2 = await c2.request(_line(p_big, "a"))
                await c1.close()
                await c2.close()
                await server.close()
            return r1, r2

        r1, r2 = asyncio.run(scenario())
        # The wire echoes the client's own id, un-namespaced.
        assert r1["id"] == "a" and r2["id"] == "a"
        assert np.array(r1["x"]).shape == p_small.x0.shape
        assert np.array(r2["x"]).shape == p_big.x0.shape
        journaled = [json.loads(l)["id"] for l in
                     journal.read_text().splitlines()
                     if json.loads(l).get("type") == "request"]
        assert len(set(journaled)) == 2
        assert all(re.fullmatch(r"c\d+:a", rid) for rid in journaled)


class TestDeadlinePropagation:
    def test_budget_runs_from_socket_arrival(self, rng):
        """A request whose deadline expires while queued in the edge is
        answered ``deadline-exceeded`` without touching the service."""
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    resp = await client.request(
                        _line(problem, "late", deadline_s=1e-9)
                    )
                touched = svc.stats().requests
                stats = server.stats
                await server.close()
            return resp, touched, stats

        resp, touched, stats = asyncio.run(scenario())
        assert resp["status"] == "error"
        assert resp["error"]["kind"] == "deadline-exceeded"
        assert "edge intake" in resp["error"]["message"]
        assert touched == 0 and stats.deadline_expired == 1

    def test_server_default_deadline_applies(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(
                    svc, window=1, default_deadline_s=1e-9
                )
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    return await client.request(_line(problem, "d"))

        resp = asyncio.run(scenario())
        assert resp["error"]["kind"] == "deadline-exceeded"

    def test_generous_deadline_solves(self, rng):
        problem = random_fixed_problem(rng, 3, 3)

        async def scenario():
            with SolveService() as svc:
                server = await _start(svc, window=1)
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    resp = await client.request(
                        _line(problem, "ok", deadline_s=60.0)
                    )
                await server.close()
            return resp

        assert asyncio.run(scenario())["status"] == "ok"


class TestClientDisconnect:
    def test_disconnect_mid_pipeline_answers_exactly_once(
        self, rng, tmp_path
    ):
        """A vanished client's in-flight requests are still solved (and
        journaled) exactly once; their responses are dropped at
        dispatch, never lost by the service."""
        journal = tmp_path / "edge.journal"
        problems = [random_fixed_problem(rng, 4, 3) for _ in range(4)]

        async def scenario():
            with SolveService(journal=journal) as svc:
                server = await _start(svc, window=64, flush_interval=30.0)
                client = await EdgeClient.connect("127.0.0.1", server.port)
                for i, p in enumerate(problems):
                    await client.send(_line(p, f"r{i}"))
                # Wait until all four are accepted into the service,
                # then vanish without reading a single response.
                for _ in range(400):
                    if server.stats.requests == 4:
                        break
                    await asyncio.sleep(0.01)
                assert server.stats.requests == 4
                client.writer.transport.abort()
                await client.close()
                await server.drain(30.0)
                stats = server.stats
            return stats

        stats = asyncio.run(scenario())
        assert stats.dropped_responses == 4 and stats.responses == 0
        unanswered, recorded = replay(journal)
        assert unanswered == []
        assert len(recorded) == 4
        assert all(resp.ok for resp in recorded.values())


class TestBackpressure:
    def test_block_policy_bounds_queue_under_burst(self, rng):
        """A 10x burst against ``--max-queue 4`` + block: every request
        is answered in order, the service queue never exceeds its
        bound, and the edge paused reading at least once."""
        problems = [random_fixed_problem(rng, 3, 3) for _ in range(40)]

        async def scenario():
            with SolveService(
                max_queue=4, admission_policy="block", warm_start=False
            ) as svc:
                depths = []
                orig_submit = svc.submit

                def spying_submit(request, **options):
                    rid = orig_submit(request, **options)
                    depths.append(svc.pending)
                    return rid

                svc.submit = spying_submit
                # window > max_queue so the edge does not voluntarily
                # drain before admission sees a full queue: the block
                # verdict (and the pause) must do the bounding.
                server = await _start(
                    svc, window=16, line_buffer=8, flush_interval=0.002
                )
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    for i, p in enumerate(problems):
                        await client.send(_line(p, f"r{i}"))
                    got = [await client.recv() for _ in problems]
                stats = server.stats
                await server.close()
            return got, depths, stats

        got, depths, stats = asyncio.run(scenario())
        assert [r["id"] for r in got] == [f"r{i}" for i in range(40)]
        assert all(r["status"] == "ok" for r in got)
        assert max(depths) <= 4, "block policy overran the queue bound"
        assert stats.backpressure_pauses > 0
        assert stats.requests == 40 and stats.responses == 40

    def test_shed_oldest_answers_victims_on_their_connection(self, rng):
        problems = [random_fixed_problem(rng, 3, 3) for _ in range(4)]

        async def scenario():
            with SolveService(
                max_queue=2, admission_policy="shed-oldest",
                warm_start=False,
            ) as svc:
                server = await _start(
                    svc, window=64, flush_interval=0.05
                )
                async with await EdgeClient.connect(
                    "127.0.0.1", server.port
                ) as client:
                    for i, p in enumerate(problems):
                        await client.send(_line(p, f"r{i}"))
                    got = [await client.recv() for _ in problems]
                await server.close()
            return got

        got = asyncio.run(scenario())
        assert [r["id"] for r in got] == ["r0", "r1", "r2", "r3"]
        assert [r["status"] for r in got] == [
            "error", "error", "ok", "ok"]
        assert all(r["error"]["kind"] == "overloaded" for r in got[:2])


def _env():
    import pathlib

    import repro
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_edge(tmp_path, extra=()):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--tcp", "127.0.0.1:0", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        env=_env(), text=True, cwd=tmp_path,
    )
    line = proc.stderr.readline()
    m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
    assert m, f"no listening banner, got {line!r}"
    return proc, int(m.group(1))


class TestDrainChaosCLI:
    """Full ``serve --tcp`` subprocess killed mid-pipeline."""

    def test_sigterm_drains_every_request_exactly_once(
        self, rng, tmp_path
    ):
        journal = tmp_path / "j.jsonl"
        proc, port = _spawn_edge(
            tmp_path,
            ["--journal", str(journal), "--drain-deadline", "30",
             "--window", "2", "--stats"],
        )
        try:
            sock = socket.create_connection(("127.0.0.1", port))
            stream = sock.makefile("rw")
            sent = [f"r{i}" for i in range(6)]
            for i, rid in enumerate(sent):
                stream.write(json.dumps(
                    {"id": rid,
                     "problem": problem_to_jsonable(
                         random_fixed_problem(rng, 4, 3))}
                ) + "\n")
            stream.flush()
            first = json.loads(stream.readline())
            proc.send_signal(signal.SIGTERM)
            # The drain answers everything already accepted, flushes the
            # sockets, then closes them; read to EOF.
            rest = [json.loads(l) for l in stream if l.strip()]
            sock.close()
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        answered = [first] + rest
        wire_ids = [r["id"] for r in answered]
        assert len(wire_ids) == len(set(wire_ids)), "double-answered id"
        assert all(r["status"] == "ok" for r in answered)
        # Zero lost, zero double-answered: every *accepted* request
        # (it reached the journal) is either answered exactly once or
        # stays pending for the next --recover; never both, never
        # neither.  Lines still unread in the socket buffer at SIGTERM
        # were never accepted — the client owns resubmitting those.
        unanswered, recorded = replay(journal)
        recorded_ids = {rid.split(":", 1)[1] for rid in recorded}
        pending_ids = {req.id.split(":", 1)[1] for req in unanswered}
        assert set(wire_ids) <= recorded_ids
        assert recorded_ids | pending_ids <= set(sent)
        assert recorded_ids & pending_ids == set()
        accepted = len(recorded_ids) + len(pending_ids)
        assert accepted >= len(wire_ids) >= 1
        stats = json.loads(err.strip().splitlines()[-1])
        assert stats["requests"] == accepted
        assert stats["responses"] == len(answered)

    def test_client_disconnect_does_not_kill_the_server(
        self, rng, tmp_path
    ):
        proc, port = _spawn_edge(tmp_path, ["--window", "2"])
        try:
            sock = socket.create_connection(("127.0.0.1", port))
            payload = json.dumps(
                {"id": "gone",
                 "problem": problem_to_jsonable(
                     random_fixed_problem(rng, 4, 3))}) + "\n"
            sock.sendall(payload.encode())
            sock.setsockopt(  # RST on close: an abortive disconnect
                socket.SOL_SOCKET, socket.SO_LINGER,
                b"\x01\x00\x00\x00\x00\x00\x00\x00",
            )
            sock.close()
            # The server survives and still answers a fresh connection.
            sock2 = socket.create_connection(("127.0.0.1", port))
            stream = sock2.makefile("rw")
            stream.write(payload)
            stream.flush()
            resp = json.loads(stream.readline())
            sock2.close()
            assert resp["id"] == "gone" and resp["status"] == "ok"
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=60)
            assert proc.returncode == 0, err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)
