"""The Modified Algorithm: componentwise multiplier translation."""

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.bounding import bound_multipliers, d_max_bound
from repro.core.convergence import StoppingRule
from repro.core.dual import zeta_fixed, zeta_sam
from repro.core.sea import solve_fixed


class TestBoundMultipliers:
    def test_noop_when_within_radius(self):
        x = np.ones((3, 3))
        lam = np.array([1.0, -2.0, 0.5])
        mu = np.array([0.0, 3.0, -1.0])
        lam2, mu2, changed = bound_multipliers(x, lam, mu, radius=10.0)
        assert not changed
        np.testing.assert_array_equal(lam2, lam)

    def test_translation_preserves_edge_sums(self, rng):
        x = rng.uniform(0.0, 1.0, (5, 5))
        x[x < 0.5] = 0.0
        lam = rng.normal(0, 100, 5)
        mu = rng.normal(0, 100, 5)
        lam2, mu2, changed = bound_multipliers(x, lam, mu, radius=10.0)
        edges = x > 0
        before = lam[:, None] + mu[None, :]
        after = lam2[:, None] + mu2[None, :]
        np.testing.assert_allclose(after[edges], before[edges], rtol=1e-12)

    def test_dual_value_invariant_fixed(self, rng):
        """zeta_3 is unchanged by the translation (the paper's key fact)."""
        problem = random_fixed_problem(rng, 6, 6)
        result = solve_fixed(problem, stop=StoppingRule(eps=1e-8, max_iterations=5000))
        lam = result.lam + 500.0  # push out of any reasonable radius
        mu = result.mu - 500.0
        z_before = zeta_fixed(problem, lam, mu)
        lam2, mu2, changed = bound_multipliers(result.x, lam, mu, radius=100.0)
        assert changed
        z_after = zeta_fixed(problem, lam2, mu2)
        assert z_after == pytest.approx(z_before, rel=1e-10)

    def test_offending_multiplier_zeroed(self):
        x = np.ones((2, 2))  # single component
        lam = np.array([1000.0, 999.0])
        mu = np.array([0.0, 0.0])
        lam2, mu2, changed = bound_multipliers(x, lam, mu, radius=100.0)
        assert changed
        assert lam2[0] == pytest.approx(0.0)
        np.testing.assert_allclose(mu2, 1000.0)

    def test_components_translated_independently(self):
        x = np.zeros((4, 4))
        x[:2, :2] = 1.0
        x[2:, 2:] = 1.0
        lam = np.array([1000.0, 1001.0, 1.0, 2.0])
        mu = np.zeros(4)
        lam2, mu2, changed = bound_multipliers(x, lam, mu, radius=100.0)
        assert changed
        # Second component untouched.
        np.testing.assert_array_equal(lam2[2:], lam[2:])
        np.testing.assert_array_equal(mu2[2:], mu[2:])
        # First component shifted by its first offender.
        np.testing.assert_allclose(mu2[:2], 1000.0)


class TestDMax:
    def test_positive_and_data_dependent(self, rng):
        problem = random_fixed_problem(rng, 4, 4)
        d1 = d_max_bound(problem)
        assert d1 > 0
        bigger = random_fixed_problem(rng, 4, 4, weight_spread=1000.0)
        assert d_max_bound(bigger) != d1
