"""Wire codec round-trips: strict JSON, non-finite payloads, framing.

The headline regression here: a non-converged solve whose residual (or
matrix entries) went NaN must still serialize as *strict* JSON —
``json.dumps(..., allow_nan=True)``'s bare ``NaN``/``Infinity`` tokens
are not JSON and break spec-compliant clients.  The wire encodes every
non-finite float as ``null`` plus a ``nonfinite`` sidecar, and
:func:`response_from_jsonable` restores the exact values, so the
round-trip is lossless.

Framing is shared: :func:`decode_request_line` is the single decoder
behind both the stdin JSONL session (``read_requests``) and the TCP
edge, so the two wires accept and reject identical frames — the parity
tests here pin that down.
"""

import io
import json

import numpy as np
import pytest

from conftest import random_fixed_problem
from repro.core.result import SolveResult
from repro.errors import DuplicateRequestError, InvalidRequestError
from repro.service import SolveService
from repro.service.request import SolveRequest, SolveResponse
from repro.service.wire import (
    RequestError,
    decode_request_line,
    dump_response,
    error_line,
    read_requests,
    request_from_jsonable,
    request_to_jsonable,
    response_from_jsonable,
    response_to_jsonable,
)


def _strict_loads(text: str):
    """json.loads that rejects bare NaN/Infinity tokens (the default
    parser accepts them silently, which is exactly how the original bug
    escaped)."""
    return json.loads(
        text,
        parse_constant=lambda tok: pytest.fail(
            f"non-strict JSON token {tok!r} on the wire"
        ),
    )


def _ok_response(result: SolveResult, rid="r1") -> SolveResponse:
    return SolveResponse(id=rid, result=result, kind="fixed", elapsed=0.01)


def _result(x, s, d, residual=1e-9, objective=2.5, converged=True):
    x = np.asarray(x, dtype=np.float64)
    return SolveResult(
        x=x, s=np.asarray(s, float), d=np.asarray(d, float),
        lam=np.zeros(x.shape[0]), mu=np.zeros(x.shape[1]),
        converged=converged, iterations=7, residual=residual,
        objective=objective, elapsed=0.01, algorithm="sea-fixed",
    )


class TestStrictJSON:
    def test_nan_residual_is_strict_json(self):
        """The headline bugfix: a NaN residual/objective must not emit a
        bare ``NaN`` token."""
        resp = _ok_response(_result(
            [[1.0, 2.0]], [3.0], [1.0, 2.0],
            residual=float("nan"), objective=float("inf"), converged=False,
        ))
        line = dump_response(resp)
        obj = _strict_loads(line)
        assert obj["residual"] is None
        assert obj["objective"] is None
        assert obj["nonfinite"] == {"residual": "nan", "objective": "inf"}

    def test_nan_matrix_entries_are_strict_json(self):
        x = np.array([[1.0, np.nan], [np.inf, -np.inf]])
        resp = _ok_response(_result(x, [np.nan, 2.0], [1.0, np.nan],
                                    converged=False))
        obj = _strict_loads(dump_response(resp))
        assert obj["x"][0][1] is None and obj["x"][1][0] is None
        assert sorted(obj["nonfinite"]["x"]) == [
            [0, 1, "nan"], [1, 0, "inf"], [1, 1, "-inf"],
        ]
        assert obj["nonfinite"]["s"] == [[0, "nan"]]
        assert obj["nonfinite"]["d"] == [[1, "nan"]]

    def test_all_finite_has_no_sidecar(self):
        resp = _ok_response(_result([[1.0, 2.0]], [3.0], [1.0, 2.0]))
        obj = _strict_loads(dump_response(resp))
        assert "nonfinite" not in obj

    def test_error_line_is_strict(self):
        err = RequestError(3, "line 3: invalid JSON", id="r9")
        obj = _strict_loads(error_line(err))
        assert obj["id"] == "r9" and obj["line"] == 3
        assert obj["error"]["kind"] == "invalid-request"

    def test_service_nonconverged_nan_end_to_end(self, rng):
        """A real service response that fails to converge still dumps
        strict JSON (regression for the original report)."""
        problem = random_fixed_problem(rng, 4, 4)
        with SolveService(batching=False) as svc:
            svc.submit(problem, max_iterations=1, eps=1e-300)
            (resp,) = svc.drain()
        assert resp.ok
        _strict_loads(dump_response(resp))


class TestLosslessRoundTrip:
    def test_exact_nonfinite_restoration(self):
        x = np.array([[1.5, np.nan, 3.0], [np.inf, 5.0, -np.inf]])
        s = np.array([np.nan, 2.0])
        d = np.array([1.0, np.inf, -np.inf])
        resp = _ok_response(_result(x, s, d, residual=float("-inf"),
                                    converged=False))
        back = response_from_jsonable(_strict_loads(dump_response(resp)))
        assert back.ok and back.id == "r1" and back.kind == "fixed"
        np.testing.assert_array_equal(back.result.x, x)
        np.testing.assert_array_equal(back.result.s, s)
        np.testing.assert_array_equal(back.result.d, d)
        assert np.isneginf(back.result.residual)
        assert back.result.objective == 2.5

    @pytest.mark.parametrize("seed", range(10))
    def test_random_nonfinite_placements(self, seed):
        """Property-style: any pattern of nan/inf/-inf anywhere in
        x/s/d survives the wire bit-for-bit."""
        rng = np.random.default_rng(seed)
        m, n = rng.integers(1, 6, size=2)
        specials = np.array([np.nan, np.inf, -np.inf])
        def salt(a):
            flat = a.ravel()
            k = rng.integers(0, flat.size + 1)
            pos = rng.choice(flat.size, size=k, replace=False)
            flat[pos] = rng.choice(specials, size=k)
            return a
        x = salt(rng.normal(size=(m, n)))
        s = salt(rng.normal(size=m))
        d = salt(rng.normal(size=n))
        resp = _ok_response(_result(x, s, d,
                                    residual=float(rng.choice(specials)),
                                    converged=False))
        back = response_from_jsonable(_strict_loads(dump_response(resp)))
        np.testing.assert_array_equal(back.result.x, x)
        np.testing.assert_array_equal(back.result.s, s)
        np.testing.assert_array_equal(back.result.d, d)
        np.testing.assert_equal(back.result.residual, resp.result.residual)

    def test_error_response_round_trip(self):
        resp = SolveResponse(id="e1", error="queue full",
                             error_kind="overloaded", kind="fixed", retries=2)
        back = response_from_jsonable(_strict_loads(dump_response(resp)))
        assert not back.ok
        assert back.id == "e1" and back.error_kind == "overloaded"
        assert back.error == "queue full" and back.retries == 2

    def test_suppressed_matrix_decodes_none(self):
        resp = _ok_response(_result([[1.0]], [1.0], [1.0]))
        back = response_from_jsonable(
            _strict_loads(dump_response(resp, include_matrix=False))
        )
        assert back.ok and back.result.x is None and back.result.s is None

    def test_request_round_trip(self, rng):
        req = SolveRequest(problem=random_fixed_problem(rng, 3, 4),
                           id="q1", eps=1e-5, deadline_s=2.0, engine="dense")
        back = request_from_jsonable(
            json.loads(json.dumps(request_to_jsonable(req)))
        )
        assert back.id == "q1" and back.eps == 1e-5
        assert back.deadline_s == 2.0
        np.testing.assert_allclose(back.problem.x0, req.problem.x0)


class TestIdCoercion:
    def _req_obj(self, rng, rid):
        return {"id": rid,
                "problem": request_to_jsonable(
                    SolveRequest(problem=random_fixed_problem(rng, 3, 3))
                )["problem"]}

    @pytest.mark.parametrize("rid,expect", [
        (7, "7"), (3.5, "3.5"), (-2, "-2"), ("r1", "r1"), (None, None),
    ])
    def test_numeric_ids_coerce_to_str(self, rng, rid, expect):
        req = request_from_jsonable(self._req_obj(rng, rid))
        assert req.id == expect

    @pytest.mark.parametrize("rid", [True, [1], {"a": 1}])
    def test_non_stringable_ids_rejected(self, rng, rid):
        with pytest.raises(InvalidRequestError, match="id must be a string"):
            request_from_jsonable(self._req_obj(rng, rid))

    def test_rejected_id_surfaces_as_request_error(self, rng):
        line = json.dumps(self._req_obj(rng, [1, 2]))
        decoded = decode_request_line(line, 4)
        assert isinstance(decoded, RequestError)
        assert decoded.lineno == 4 and decoded.id is None

    def test_numeric_id_echoed_in_error(self, rng):
        obj = self._req_obj(rng, 12)
        obj["problem"] = {"kind": "nope"}
        decoded = decode_request_line(json.dumps(obj), 2)
        assert isinstance(decoded, RequestError)
        assert decoded.id == "12"

    def test_coerced_id_dedups_against_journal(self, rng, tmp_path):
        """The replay interaction that motivated coercion: an id
        journaled as ``"7"`` must dedup a resubmission of ``7`` (and
        vice versa) after recovery — one stable JSON type end to end."""
        journal = tmp_path / "svc.journal"
        problem = random_fixed_problem(rng, 3, 3)
        line = json.dumps({"id": 7,
                           "problem": request_to_jsonable(
                               SolveRequest(problem=problem))["problem"]})
        with SolveService(journal=journal) as svc:
            req = decode_request_line(line, 1)
            assert isinstance(req, SolveRequest) and req.id == "7"
            svc.submit(req)
            (resp,) = svc.drain()
            assert resp.id == "7"
        # Every journalled id is a string — replay never sees an int.
        recorded = [json.loads(l) for l in
                    journal.read_text().strip().splitlines()]
        assert all(isinstance(r.get("id"), str)
                   for r in recorded if "id" in r)
        with SolveService.recover(journal) as svc:
            for rid in (7, "7"):
                with pytest.raises(DuplicateRequestError):
                    svc.submit(decode_request_line(
                        json.dumps({"id": rid,
                                    "problem": request_to_jsonable(
                                        SolveRequest(problem=problem)
                                    )["problem"]}), 1))


class TestFramingParity:
    """decode_request_line is the one decoder behind both wires."""

    def _frames(self, rng):
        good = json.dumps(request_to_jsonable(
            SolveRequest(problem=random_fixed_problem(rng, 3, 3), id="g")))
        return [
            ("", None),
            ("   ", None),
            (good, SolveRequest),
            ("{not json", RequestError),
            ("[1,2,3]", RequestError),
            ('{"id":"x"}', RequestError),          # missing problem
            ('{"id":"x","problem":{"kind":"??"}}', RequestError),
            ('"just a string"', RequestError),
        ]

    def test_classification(self, rng):
        for line, expect in self._frames(rng):
            decoded = decode_request_line(line, 1)
            if expect is None:
                assert decoded is None, line
            else:
                assert isinstance(decoded, expect), (line, decoded)

    def test_read_requests_matches_line_decoder(self, rng):
        frames = self._frames(rng)
        stream = io.StringIO("\n".join(line for line, _ in frames) + "\n")
        got = list(read_requests(stream))
        # read_requests drops the blanks, keeps everything else in order.
        expected = [e for _, e in frames if e is not None]
        assert [type(g) for g in got] == [
            SolveRequest if e is SolveRequest else RequestError
            for e in expected
        ]
        # Line numbers count wire lines (blanks included), so the error
        # a client correlates by line is the physical line it wrote.
        errors = [g for g in got if isinstance(g, RequestError)]
        assert errors[0].lineno == 4

    def test_oversized_line_decodes_but_edge_rejects(self, rng):
        """The stdin session has no line cap (the OS pipe does);
        the edge enforces max_line_bytes *before* decoding.  Both
        still agree on every frame small enough to decode."""
        big = json.dumps(request_to_jsonable(SolveRequest(
            problem=random_fixed_problem(rng, 20, 20), id="big")))
        decoded = decode_request_line(big, 1)
        assert isinstance(decoded, SolveRequest)

    def test_mid_stream_error_does_not_kill_stream(self, rng):
        frames = self._frames(rng)
        stream = io.StringIO(
            "\n".join([frames[2][0], "{broken", frames[2][0]]) + "\n")
        got = list(read_requests(stream))
        assert [isinstance(g, SolveRequest) for g in got] == [
            True, False, True]
