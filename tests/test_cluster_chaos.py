"""Cluster chaos: SIGKILLed shards, respawn ladder, exactly-once.

These tests use the real process shard backend: replicas are child
processes that get SIGKILLed mid-traffic, and the assertions are the
durability contract cluster-wide — zero lost requests, zero
double-answered requests, and replayed answers bit-identical to an
uninterrupted run (the ``warm_start=False, batching=False`` idiom from
test_durability.py, since warm-started duals depend on service
history).
"""

import numpy as np
import pytest

from conftest import random_elastic_problem, random_fixed_problem
from repro.cluster import ClusterService
from repro.core.api import solve


def durable_cluster(shards=3, **kwargs):
    kwargs.setdefault("warm_start", False)
    kwargs.setdefault("batching", False)
    return ClusterService(shards=shards, shard_backend="process", **kwargs)


def busiest_shard(svc):
    """The shard with the most in-flight requests (deterministic tie-break)."""
    counts = {sid: svc._pending_on(sid) for sid in svc.shard_ids}
    return max(sorted(counts), key=counts.get)


class TestShardKill:
    def test_sigkill_mid_traffic_loses_and_duplicates_nothing(
        self, rng, tmp_path
    ):
        """The ISSUE's chaos gate: kill a shard with journaled in-flight
        work, keep serving, and end with every request answered exactly
        once, bit-identical to a run that was never interrupted."""
        problems = (
            [random_fixed_problem(rng, 7, 6) for _ in range(10)]
            + [random_elastic_problem(rng, 6, 5) for _ in range(5)]
        )
        with durable_cluster(shards=3, journal_dir=tmp_path / "j") as svc:
            ids = [svc.submit(p) for p in problems[:6]]
            answered = list(svc.drain())
            # Second wave queued, then a replica dies *with work queued*.
            ids += [svc.submit(p) for p in problems[6:]]
            victim = busiest_shard(svc)
            victim_pid = svc._shards[victim].pid
            svc._shards[victim].kill()
            # Traffic continues: the router revives the shard from its
            # journal inside this drain.
            answered += svc.drain()
            stats = svc.stats()
            assert stats.router["respawns"][victim] == 1
            assert svc._shards[victim].pid != victim_pid

        by_id = {r.id: r for r in answered}
        assert len(answered) == len(by_id), "a request was answered twice"
        assert sorted(by_id) == sorted(ids), "a request was lost"
        for rid, problem in zip(ids, problems):
            resp = by_id[rid]
            assert resp.ok
            np.testing.assert_array_equal(resp.result.x, solve(problem).x)

    def test_kill_without_journal_resubmits_in_flight(self, rng, tmp_path):
        """No journal: the router's in-flight map is the only record.
        A killed shard's queue is gone, so reconcile re-submits every
        pending request it kept — nothing is lost even undurably."""
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(8)]
        with durable_cluster(shards=2) as svc:
            ids = [svc.submit(p) for p in problems]
            victim = busiest_shard(svc)
            svc._shards[victim].kill()
            responses = {r.id: r for r in svc.drain()}
            assert sorted(responses) == sorted(ids)
            assert svc.stats().router["resubmitted_in_flight"] > 0
            for rid, problem in zip(ids, problems):
                np.testing.assert_array_equal(
                    responses[rid].result.x, solve(problem).x
                )

    def test_answered_but_undelivered_responses_recover_from_journal(
        self, rng, tmp_path
    ):
        """Kill landing after a shard journaled its answers but before
        the router received them: reconcile must deliver the *recorded*
        responses, not re-solve."""
        problems = [random_fixed_problem(rng, 6, 5) for _ in range(6)]
        with durable_cluster(shards=1, journal_dir=tmp_path / "j") as svc:
            ids = [svc.submit(p) for p in problems]
            shard = svc._shards["shard-0"]
            # Drive the shard's drain directly and drop the reply —
            # simulating answers journaled but lost on the pipe.
            lost = shard.call("drain")
            assert len(lost) == len(ids)
            shard.kill()
            responses = {r.id: r for r in svc.drain()}
            stats = svc.stats()
        assert sorted(responses) == sorted(ids)
        assert stats.router["recovered_in_flight"] == len(ids)
        # The respawned shard returned recorded answers, solved nothing.
        assert stats.aggregate.journal_recovered == len(ids)
        assert stats.aggregate.completed == 0, "answers were re-solved"
        for rid, want in ((r.id, r) for r in lost):
            np.testing.assert_array_equal(
                responses[rid].result.x, want.result.x
            )

    def test_respawn_ladder_degrades_to_inline(self, rng, tmp_path):
        """Past max_respawns the replica falls back to an in-process
        shard — the keyspace slice stays served instead of crash-looping."""
        with durable_cluster(
            shards=2, journal_dir=tmp_path / "j", max_respawns=1
        ) as svc:
            rid = svc.submit(random_fixed_problem(rng, 6, 5))
            sid = svc._pending[rid].shard
            svc._shards[sid].kill()
            svc.ping()  # health probe respawns (process attempt #1)
            assert svc._shards[sid].backend == "process"
            svc._shards[sid].kill()
            svc.ping()  # ladder exhausted: inline fallback
            assert svc._shards[sid].backend == "inline"
            stats = svc.stats()
            assert stats.router["degraded"] == [sid]
            assert stats.router["respawns"][sid] == 2
            # And the shard still answers its slice.
            responses = svc.drain()
            assert [r.id for r in responses] == [rid] and responses[0].ok

    def test_ping_reports_health(self, rng, tmp_path):
        with durable_cluster(shards=2, journal_dir=tmp_path / "j") as svc:
            assert set(svc.ping().values()) == {"ok"}
            svc._shards["shard-1"].kill()
            health = svc.ping()
            assert health["shard-0"] == "ok"
            assert health["shard-1"] == "respawned"


class TestClusterRestart:
    def test_full_restart_with_more_shards_is_exactly_once(
        self, rng, tmp_path
    ):
        """Process-backend end-to-end: serve, hard-stop with a full
        queue, recover into a *larger* cluster, finish the work — zero
        lost, zero double-answered, bit-identical."""
        problems = [random_fixed_problem(rng, 6, 6) for _ in range(9)]
        journal_dir = tmp_path / "j"
        with durable_cluster(shards=2, journal_dir=journal_dir) as svc:
            ids = [svc.submit(p) for p in problems[:3]]
            delivered = {r.id: r for r in svc.drain()}
            ids += [svc.submit(p) for p in problems[3:]]
            svc.shutdown(deadline_s=0)  # hard stop: queue stays journaled

        rec = ClusterService.recover(
            journal_dir, shards=4, shard_backend="process",
            warm_start=False, batching=False,
        )
        with rec:
            assert rec.remap_summary["rewritten"] is True
            assert sorted(rec.recovered) == sorted(delivered)
            replayed = {r.id: r for r in rec.drain()}

        answered = set(rec.recovered) | set(replayed)
        assert sorted(answered) == sorted(ids), "requests lost in remap"
        assert not (set(rec.recovered) & set(replayed)), "answered twice"
        for rid, problem in zip(ids, problems):
            resp = replayed.get(rid) or rec.recovered[rid]
            np.testing.assert_array_equal(resp.result.x, solve(problem).x)

    def test_shutdown_deadline_drains_what_it_can(self, rng, tmp_path):
        with durable_cluster(shards=2, journal_dir=tmp_path / "j") as svc:
            ids = [svc.submit(random_fixed_problem(rng, 5, 5))
                   for _ in range(4)]
            drained = svc.shutdown(deadline_s=60)
            assert sorted(r.id for r in drained) == sorted(ids)
            with pytest.raises(Exception, match="draining"):
                svc.submit(random_fixed_problem(rng, 5, 5))
