"""Tests for the weight-scheme helpers (Section 2's flexibility)."""

import numpy as np
import pytest

from repro.core.weights import SCHEMES, cell_weights, total_weights


class TestCellWeights:
    def test_unit(self):
        x0 = np.array([[2.0, 4.0]])
        np.testing.assert_array_equal(cell_weights(x0, "unit"), np.ones((1, 2)))

    def test_chi_square_is_reciprocal(self):
        x0 = np.array([[2.0, 4.0]])
        np.testing.assert_allclose(
            cell_weights(x0, "chi-square"), np.array([[0.5, 0.25]])
        )

    def test_inverse_sqrt(self):
        x0 = np.array([[4.0, 16.0]])
        np.testing.assert_allclose(
            cell_weights(x0, "inverse-sqrt"), np.array([[0.5, 0.25]])
        )

    def test_masked_cells_get_unit_weight(self):
        x0 = np.array([[2.0, 0.0]])
        mask = np.array([[True, False]])
        w = cell_weights(x0, "chi-square", mask=mask)
        assert w[0, 1] == 1.0

    def test_zero_active_entry_rejected_for_reciprocal(self):
        with pytest.raises(ValueError, match="strictly positive"):
            cell_weights(np.array([[0.0, 1.0]]), "chi-square")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown"):
            cell_weights(np.ones((1, 1)), "nope")

    def test_all_listed_schemes_work(self):
        for scheme in SCHEMES:
            w = cell_weights(np.full((2, 2), 3.0), scheme)
            assert np.all(w > 0)


class TestTotalWeights:
    def test_chi_square(self):
        np.testing.assert_allclose(
            total_weights(np.array([4.0, 8.0]), "chi-square"),
            np.array([0.25, 0.125]),
        )

    def test_unit(self):
        np.testing.assert_array_equal(
            total_weights(np.array([4.0, 8.0]), "unit"), np.ones(2)
        )

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            total_weights(np.array([-1.0]), "inverse-sqrt")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown"):
            total_weights(np.ones(2), "nope")
