"""Unit tests for the scalar exact-equilibration reference solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equilibration.scalar import (
    evaluate_piecewise_linear,
    solve_piecewise_linear_scalar,
)


class TestEvaluate:
    def test_below_all_breakpoints_only_elastic_term(self):
        g = evaluate_piecewise_linear(-10.0, np.array([0.0, 1.0]), np.array([1.0, 2.0]), a=0.5, c=3.0)
        assert g == pytest.approx(0.5 * -10.0 + 3.0)

    def test_above_all_breakpoints_sums_slopes(self):
        g = evaluate_piecewise_linear(5.0, np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        assert g == pytest.approx(1.0 * 5.0 + 2.0 * 4.0)


class TestFixedCase:
    def test_simple_two_piece(self):
        b = np.array([0.0, 2.0])
        s = np.array([1.0, 1.0])
        lam = solve_piecewise_linear_scalar(b, s, target=3.0)
        # For lam in [2, inf): g = (lam-0) + (lam-2) = 2 lam - 2 = 3.
        assert lam == pytest.approx(2.5)

    def test_target_zero_returns_first_breakpoint(self):
        lam = solve_piecewise_linear_scalar(
            np.array([1.5, 3.0]), np.array([1.0, 1.0]), target=0.0
        )
        assert lam == pytest.approx(1.5)

    def test_negative_target_infeasible(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_piecewise_linear_scalar(
                np.array([0.0]), np.array([1.0]), target=-1.0
            )

    def test_zero_slope_entries_ignored(self):
        lam_with = solve_piecewise_linear_scalar(
            np.array([0.0, -100.0, 2.0]), np.array([1.0, 0.0, 1.0]), target=3.0
        )
        lam_without = solve_piecewise_linear_scalar(
            np.array([0.0, 2.0]), np.array([1.0, 1.0]), target=3.0
        )
        assert lam_with == pytest.approx(lam_without)

    def test_empty_active_set_raises(self):
        with pytest.raises(ValueError, match="empty"):
            solve_piecewise_linear_scalar(
                np.array([1.0]), np.array([0.0]), target=1.0
            )


class TestElasticCase:
    def test_solution_below_breakpoints(self):
        # a*lam + c = target solvable below b_min: lam = (1 - 3)/0.5 = -4.
        lam = solve_piecewise_linear_scalar(
            np.array([0.0]), np.array([1.0]), target=1.0, a=0.5, c=3.0
        )
        assert lam == pytest.approx(-4.0)

    def test_no_cells_pure_elastic(self):
        lam = solve_piecewise_linear_scalar(
            np.array([]), np.array([]), target=2.0, a=2.0, c=0.0
        )
        assert lam == pytest.approx(1.0)

    def test_negative_slope_rejected(self):
        with pytest.raises(ValueError, match="nonnegative"):
            solve_piecewise_linear_scalar(
                np.array([0.0]), np.array([-1.0]), target=1.0
            )


@settings(max_examples=200, deadline=None)
@given(
    data=st.data(),
    n=st.integers(min_value=1, max_value=12),
    elastic=st.booleans(),
)
def test_root_property(data, n, elastic):
    """The returned lam is an exact root of g(lam) = target."""
    b = np.array(
        data.draw(
            st.lists(
                st.floats(-50.0, 50.0, allow_nan=False),
                min_size=n, max_size=n,
            )
        )
    )
    s = np.array(
        data.draw(
            st.lists(st.floats(0.01, 20.0), min_size=n, max_size=n)
        )
    )
    if elastic:
        a = data.draw(st.floats(0.01, 10.0))
        c = data.draw(st.floats(-50.0, 50.0))
        target = data.draw(st.floats(-100.0, 100.0))
    else:
        a, c = 0.0, 0.0
        target = data.draw(st.floats(0.0, 200.0))
    lam = solve_piecewise_linear_scalar(b, s, target, a=a, c=c)
    g = evaluate_piecewise_linear(lam, b, s, a=a, c=c)
    scale = max(abs(target), float(np.sum(s) * 50.0), abs(c), 1.0)
    assert g == pytest.approx(target, abs=1e-8 * scale)
